"""Random layered-DAG workload generation.

Stands in for the production DAG traces (Spark/TPC-style query plans)
the paper's domain implies: each graph is a layered random DAG — every
non-source stage depends on 1-2 stages from earlier layers, so the
graphs have genuine fan-out/fan-in and non-trivial critical paths.
Deadlines derive from the graph's critical-path lower bound times a
tightness factor, mirroring how the flat generator derives deadlines
from ideal durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.dag.graph import StageSpec, TaskGraph
from repro.sim.platform import Platform
from repro.sim.speedup import AmdahlSpeedup

__all__ = ["DAGWorkloadConfig", "generate_dag_trace"]


@dataclass(frozen=True)
class DAGWorkloadConfig:
    """Knobs of the random-DAG generator.

    Parameters
    ----------
    n_dags:
        Graphs per trace.
    horizon:
        Arrival window: graph arrivals are uniform over ``[0, horizon)``.
    stages_range:
        Inclusive (min, max) number of stages per graph.
    layers_range:
        Inclusive (min, max) number of layers the stages are spread over.
    work_range:
        (low, high) of the per-stage work, sampled log-uniformly.
    max_parallelism_range:
        Inclusive (min, max) stage elasticity ceiling (min parallelism is 1).
    tightness:
        Deadline = arrival + tightness * critical_path_length. Values
        near 1 are brutally tight (no queueing slack at all).
    gpu_fraction:
        Probability a graph's stages prefer the accelerator platform.
    serial_fraction:
        Amdahl sigma of every stage's speedup law.
    """

    n_dags: int = 10
    horizon: int = 40
    stages_range: Tuple[int, int] = (3, 8)
    layers_range: Tuple[int, int] = (2, 4)
    work_range: Tuple[float, float] = (4.0, 40.0)
    max_parallelism_range: Tuple[int, int] = (2, 4)
    tightness: float = 2.5
    gpu_fraction: float = 0.35
    serial_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.n_dags <= 0:
            raise ValueError("n_dags must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.stages_range[0] < 1 or self.stages_range[1] < self.stages_range[0]:
            raise ValueError("invalid stages_range")
        if self.layers_range[0] < 1 or self.layers_range[1] < self.layers_range[0]:
            raise ValueError("invalid layers_range")
        if self.work_range[0] <= 0 or self.work_range[1] < self.work_range[0]:
            raise ValueError("invalid work_range")
        if self.tightness <= 0:
            raise ValueError("tightness must be positive")
        if not 0.0 <= self.gpu_fraction <= 1.0:
            raise ValueError("gpu_fraction must be in [0, 1]")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError("serial_fraction must be in [0, 1)")


def _sample_affinity(rng: np.random.Generator, platforms: Sequence[Platform],
                     gpu_fraction: float) -> dict:
    """Per-graph platform affinities: every platform runnable, one preferred."""
    names = [p.name for p in platforms]
    prefer_accel = len(names) > 1 and rng.random() < gpu_fraction
    affinity = {}
    for i, name in enumerate(names):
        fast = (i == len(names) - 1) if prefer_accel else (i == 0)
        affinity[name] = float(rng.uniform(2.0, 4.0)) if fast else float(rng.uniform(0.6, 1.2))
    return affinity


def generate_dag_graph(
    config: DAGWorkloadConfig,
    platforms: Sequence[Platform],
    rng: np.random.Generator,
    arrival_time: int,
    graph_class: str = "dag",
) -> TaskGraph:
    """One random layered task graph arriving at ``arrival_time``."""
    n_stages = int(rng.integers(config.stages_range[0], config.stages_range[1] + 1))
    n_layers = int(rng.integers(config.layers_range[0], config.layers_range[1] + 1))
    n_layers = min(n_layers, n_stages)
    # Assign each stage to a layer; layer 0 gets at least one stage.
    layers: List[List[str]] = [[] for _ in range(n_layers)]
    affinity = _sample_affinity(rng, platforms, config.gpu_fraction)
    speedup = AmdahlSpeedup(config.serial_fraction)
    stages: List[StageSpec] = []
    for i in range(n_stages):
        layer = i if i < n_layers else int(rng.integers(n_layers))
        name = f"s{i}"
        layers[layer].append(name)
        lo, hi = np.log(config.work_range[0]), np.log(config.work_range[1])
        work = float(np.exp(rng.uniform(lo, hi)))
        max_k = int(rng.integers(config.max_parallelism_range[0],
                                 config.max_parallelism_range[1] + 1))
        stages.append(StageSpec(
            name=name, work=work, min_parallelism=1, max_parallelism=max_k,
            affinity=affinity, speedup_model=speedup,
        ))
    edges: List[Tuple[str, str]] = []
    for li in range(1, n_layers):
        pool = [s for lay in layers[:li] for s in lay]
        for child in layers[li]:
            n_parents = int(rng.integers(1, min(2, len(pool)) + 1))
            parents = rng.choice(len(pool), size=n_parents, replace=False)
            edges.extend((pool[int(p)], child) for p in parents)
    graph = TaskGraph(stages, edges, arrival_time, deadline=arrival_time + 1.0,
                      graph_class=graph_class)
    cp = graph.critical_path_length(platforms)
    graph.deadline = arrival_time + config.tightness * cp
    return graph


def generate_dag_trace(
    config: DAGWorkloadConfig,
    platforms: Sequence[Platform],
    rng: np.random.Generator,
) -> List[TaskGraph]:
    """A trace of ``config.n_dags`` graphs with uniform arrivals.

    Graphs are returned sorted by arrival time; roughly ``gpu_fraction``
    of them carry accelerator-preferring affinities (class ``"dag-gpu"``,
    the rest ``"dag-cpu"``).
    """
    arrivals = sorted(int(a) for a in rng.integers(0, config.horizon, size=config.n_dags))
    graphs = []
    for arrival in arrivals:
        g = generate_dag_graph(config, platforms, rng, arrival)
        # classify by which platform the (graph-shared) affinity prefers
        any_stage = next(iter(g.stages.values()))
        best = max(any_stage.affinity, key=any_stage.affinity.get)
        g.graph_class = f"dag-{best}"
        graphs.append(g)
    return graphs
