"""Command-line interface: list/run experiments, train and save policies.

Usage::

    python -m repro.cli list
    python -m repro.cli run e02_main_table --out results.json
    python -m repro.cli run e03_load_sweep --csv e03.csv --workers 4
    python -m repro.cli sweep --loads 0.5 0.8 --workers 4
    python -m repro.cli sweep --loads 0.5 0.8 --no-cache
    python -m repro.cli train --load 0.7 --iterations 60 --out policy.npz
    python -m repro.cli evaluate --policy policy.npz --load 0.7 --traces 4

``sweep`` shards its (scenario x scheduler x trace) evaluation cells
over a spawn-safe process pool and memoizes each cell in a persistent
on-disk cache (``.repro-cache/`` by default), so repeated sweeps only
pay for cells whose inputs changed.

``run`` accepts any registered experiment name (the ``eXX_*`` functions
of :mod:`repro.harness.experiments`); sizes default to the bench-scale
parameters so a laptop regenerates every table/figure in minutes.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["experiment_registry", "main"]


def experiment_registry() -> Dict[str, Callable]:
    """Name -> callable for every ``eXX_*`` experiment entry point."""
    from repro.harness import experiments as E

    registry: Dict[str, Callable] = {}
    for name in E.__all__:
        if name[0] == "e" and name[1:3].isdigit():
            registry[name] = getattr(E, name)
    return registry


def _cmd_list(_args: argparse.Namespace) -> int:
    registry = experiment_registry()
    width = max(len(n) for n in registry)
    for name, fn in sorted(registry.items()):
        doc = (inspect.getdoc(fn) or "").splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:<{width}}  {summary}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    registry = experiment_registry()
    if args.experiment not in registry:
        print(f"unknown experiment {args.experiment!r}; run `list` to see choices",
              file=sys.stderr)
        return 2
    fn = registry[args.experiment]
    params = inspect.signature(fn).parameters
    kwargs = {}
    if args.seed is not None and "seed" in params:
        kwargs["seed"] = args.seed
    if args.workers > 1:
        if "workers" not in params:
            print(f"note: {args.experiment} does not shard; "
                  "--workers ignored", file=sys.stderr)
        else:
            kwargs["workers"] = args.workers
    out = fn(**kwargs)
    print(out.text)
    print(f"\n[{out.name}] elapsed: {out.elapsed_s:.1f}s")
    if args.out:
        from repro.harness.results import ResultStore

        store = ResultStore()
        store.add_rows(out.name, out.rows)
        store.save(args.out)
        print(f"rows saved to {args.out}")
    if args.csv:
        from repro.harness.tables import rows_to_csv

        with open(args.csv, "w") as fh:
            fh.write(rows_to_csv(out.rows))
        print(f"csv saved to {args.csv}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
    from repro.harness.experiments import quick_scenario
    from repro.harness.parallel import BaselineFactory
    from repro.harness.sweeps import sweep_schedulers
    from repro.harness.tables import format_table

    scenarios = {
        f"load-{load:g}": quick_scenario(load=load).with_engine(args.engine)
        for load in args.loads
    }
    schedulers = {
        name.strip(): BaselineFactory(name.strip())
        for name in args.schedulers.split(",") if name.strip()
    }
    if not schedulers:
        print("no schedulers given", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    rows = sweep_schedulers(
        scenarios, schedulers, n_traces=args.traces,
        base_seed=args.base_seed, max_ticks=args.max_ticks,
        workers=args.workers, cache=cache,
    )
    print(format_table(rows, title=f"sweep ({args.workers} workers)"))
    if cache is not None:
        print(f"cache: {cache.stats['hits']} hits, "
              f"{cache.stats['misses']} misses -> {cache.root}")
    if args.out:
        from repro.harness.results import ResultStore

        store = ResultStore()
        store.add_rows("sweep", rows)
        store.save(args.out)
        print(f"rows saved to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.harness.experiments import quick_scenario, train_drl
    from repro.nn.serialize import save_params

    scenario = quick_scenario(load=args.load).with_engine(args.engine)
    sched = train_drl(scenario, iterations=args.iterations, seed=args.seed,
                      algo=args.algo, num_envs=args.num_envs)
    save_params(sched.policy.net, args.out)
    print(f"trained {args.algo} policy (load={args.load}, "
          f"{args.iterations} iters, {args.num_envs} envs, "
          f"{args.engine} engine) -> {args.out}")
    return 0


def _load_policy(path: str, scenario) -> "object":
    from repro.core import DRLScheduler
    from repro.nn.serialize import load_params
    from repro.rl.policies import CategoricalPolicy

    env = scenario.eval_env(scenario.traces(1), seed=0)
    policy = CategoricalPolicy.for_sizes(env.encoder.obs_dim, env.actions.n,
                                         (128, 128), np.random.default_rng(0))
    load_params(policy.net, path)
    return DRLScheduler(policy, env.config, [p.name for p in scenario.platforms],
                        greedy=True)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.baselines import baseline_roster
    from repro.core import evaluate_scheduler
    from repro.harness.experiments import quick_scenario
    from repro.harness.tables import format_table

    scenario = quick_scenario(load=args.load).with_engine(args.engine)
    traces = scenario.traces(args.traces)
    schedulers = dict(baseline_roster())
    if args.policy:
        schedulers["drl"] = _load_policy(args.policy, scenario)
    rows: List[dict] = []
    for name, sched in schedulers.items():
        reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                     max_ticks=scenario.max_ticks,
                                     engine=scenario.engine,
                                     workers=args.workers)
        rows.append({
            "scheduler": name,
            "miss_rate": float(np.mean([r.miss_rate for r in reports])),
            "mean_slowdown": float(np.mean([r.mean_slowdown for r in reports])),
            "mean_utilization": float(np.mean([r.mean_utilization for r in reports])),
        })
    rows.sort(key=lambda r: r["miss_rate"])
    print(format_table(rows, title=f"evaluation (load={args.load})"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Elasticity-compatible heterogeneous DRL resource "
                    "management for time-critical computing — reproduction CLI.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", help="experiment name, e.g. e02_main_table")
    run.add_argument("--out", help="save rows as JSON (ResultStore format)")
    run.add_argument("--csv", help="save rows as CSV")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--workers", type=int, default=1,
                     help="process-pool shards for evaluation traces")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="sharded scheduler-comparison sweep with result cache")
    sweep.add_argument("--loads", type=float, nargs="+", default=[0.5, 0.8],
                       help="offered loads, one scenario each")
    sweep.add_argument("--schedulers", default="fifo,edf,tetris,greedy-elastic",
                       help="comma-separated baseline names")
    sweep.add_argument("--traces", type=int, default=3,
                       help="paired trace seeds per scenario")
    sweep.add_argument("--base-seed", type=int, default=1000)
    sweep.add_argument("--max-ticks", type=int, default=None)
    sweep.add_argument("--engine", default="tick", choices=["tick", "event"])
    sweep.add_argument("--workers", type=int, default=1,
                       help="process-pool shards for evaluation cells")
    sweep.add_argument("--no-cache", action="store_true",
                       help="recompute every cell (skip the result cache)")
    sweep.add_argument("--cache-dir", default=None,
                       help="result-cache directory (default .repro-cache)")
    sweep.add_argument("--out", help="save rows as JSON (ResultStore format)")
    sweep.set_defaults(func=_cmd_sweep)

    train = sub.add_parser("train", help="train a DRL policy and save it")
    train.add_argument("--load", type=float, default=0.7)
    train.add_argument("--iterations", type=int, default=60)
    train.add_argument("--algo", default="ppo",
                       choices=["reinforce", "a2c", "ppo"])
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", default="policy.npz")
    train.add_argument("--num-envs", type=int, default=1,
                       help="parallel environments for batched rollouts")
    train.add_argument("--engine", default="tick", choices=["tick", "event"],
                       help="simulation driver (event = idle fast-forward)")
    train.set_defaults(func=_cmd_train)

    ev = sub.add_parser("evaluate",
                        help="compare baselines (and a saved policy) on traces")
    ev.add_argument("--policy", default=None, help="path from `train --out`")
    ev.add_argument("--load", type=float, default=0.7)
    ev.add_argument("--traces", type=int, default=3)
    ev.add_argument("--engine", default="tick", choices=["tick", "event"],
                    help="simulation driver (event = idle fast-forward)")
    ev.add_argument("--workers", type=int, default=1,
                    help="process-pool shards for evaluation traces")
    ev.set_defaults(func=_cmd_evaluate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
