"""Command-line interface: list/run experiments, train and save policies.

Usage::

    python -m repro.cli list
    python -m repro.cli run e02_main_table --out results.json
    python -m repro.cli run e03_load_sweep --csv e03.csv --workers 4
    python -m repro.cli sweep --loads 0.5 0.8 --workers 4
    python -m repro.cli sweep --scenario swf-fixture --workers 2
    python -m repro.cli train --load 0.7 --iterations 60 --out policy.npz
    python -m repro.cli evaluate --policy policy.npz --load 0.7 --traces 4
    python -m repro.cli trace import --format swf --input log.swf.gz \
        --out trace.json.gz --target-load 0.8
    python -m repro.cli trace import --preset kit-fh2 --input fh2.swf.gz \
        --out fh2.json.gz
    python -m repro.cli trace import --stream --format swf \
        --input huge.swf.gz --out trace.jsonl.gz --target-load 0.8
    python -m repro.cli trace stats --input trace.json.gz
    python -m repro.cli scenarios
    python -m repro.cli fuzz run --train-scenario swf-fixture --workers 4
    python -m repro.cli fuzz archive
    python -m repro.cli sweep --scenario fuzz/0123456789ab
    python -m repro.cli leaderboard --scenarios quick swf-fixture \
        --agents ppo --workers 4 --out leaderboard.json --out leaderboard.md
    python -m repro.cli sweep --scenario shards/ --window-jobs 5000 \
        --backend queue --queue-dir /shared/q --workers 2
    python -m repro.cli worker --queue-dir /shared/q
    python -m repro.cli cache stats

``leaderboard`` trains each requested agent once per named scenario
(policies persist in a content-addressed store, ``.repro-policies/`` by
default, so re-runs retrain nothing), evaluates every trained policy and
heuristic baseline on every scenario, and ranks them — the
cross-scenario generalization matrix of :mod:`repro.harness.leaderboard`.

``sweep`` shards its (scenario x scheduler x trace) evaluation cells
over a spawn-safe process pool and memoizes each cell in a persistent
on-disk cache (``.repro-cache/`` by default), so repeated sweeps only
pay for cells whose inputs changed.

``--backend queue`` instead publishes the cells as lease files in a
shared queue directory; any number of ``repro.cli worker`` processes —
same host or peers over a shared filesystem — claim and compute cells
while the driver merges results in deterministic cell order, so the
artifacts are byte-identical to the serial backend. ``--window-jobs N``
evaluates a trace container as contiguous windows of at most ``N`` jobs
(independent cells, exact merge), bounding peak memory however large
the archive.

``trace`` ingests real cluster archives (Standard Workload Format logs
or columnar CSV tables, gzip-aware) into the repo's trace JSON via the
:mod:`repro.workload.ingest` pipeline; ``--scenario`` on ``sweep`` /
``evaluate`` / ``train`` then selects a named scenario from the
registry (:mod:`repro.harness.library`) — or an imported trace file
directly.

``fuzz`` runs the adversarial scenario search of
:mod:`repro.workload.fuzz`: it hunts the synthetic generator's knob
space for settings where a trained policy loses worst to the best
heuristic baseline, and archives the survivors as named
``fuzz/<fingerprint>`` stress scenarios that every ``--scenario`` flag
accepts. ``trace import --preset`` resolves the full ingest
configuration for a well-known public archive (KIT FH2, SDSC SP2,
Google 2019) and fits arrival/speedup structure from the records.

``run`` accepts any registered experiment name (the ``eXX_*`` functions
of :mod:`repro.harness.experiments`); sizes default to the bench-scale
parameters so a laptop regenerates every table/figure in minutes.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["experiment_registry", "main"]


def experiment_registry() -> Dict[str, Callable]:
    """Name -> callable for every ``eXX_*`` experiment entry point."""
    from repro.harness import experiments as E

    registry: Dict[str, Callable] = {}
    for name in E.__all__:
        if name[0] == "e" and name[1:3].isdigit():
            registry[name] = getattr(E, name)
    return registry


def _cmd_list(_args: argparse.Namespace) -> int:
    registry = experiment_registry()
    width = max(len(n) for n in registry)
    for name, fn in sorted(registry.items()):
        doc = (inspect.getdoc(fn) or "").splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:<{width}}  {summary}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    registry = experiment_registry()
    if args.experiment not in registry:
        print(f"unknown experiment {args.experiment!r}; run `list` to see choices",
              file=sys.stderr)
        return 2
    fn = registry[args.experiment]
    params = inspect.signature(fn).parameters
    kwargs = {}
    if args.seed is not None and "seed" in params:
        kwargs["seed"] = args.seed
    if args.workers > 1:
        if "workers" not in params:
            print(f"note: {args.experiment} does not shard; "
                  "--workers ignored", file=sys.stderr)
        else:
            kwargs["workers"] = args.workers
    if args.scenario:
        if "scenario" not in params:
            print(f"{args.experiment} does not accept --scenario",
                  file=sys.stderr)
            return 2
        kwargs["scenario"] = args.scenario
    out = fn(**kwargs)
    print(out.text)
    print(f"\n[{out.name}] elapsed: {out.elapsed_s:.1f}s")
    if args.out:
        from repro.harness.results import ResultStore

        store = ResultStore()
        store.add_rows(out.name, out.rows)
        store.save(args.out)
        print(f"rows saved to {args.out}")
    if args.csv:
        from repro.harness.tables import rows_to_csv
        from repro.util.io import atomic_write_text

        atomic_write_text(args.csv, rows_to_csv(out.rows))
        print(f"csv saved to {args.csv}")
    return 0


def _resolve_backend(args: argparse.Namespace):
    """The executor backend selected by ``--backend`` (None = legacy)."""
    if getattr(args, "backend", None) is None:
        return None
    from repro.harness.executor import make_backend

    return make_backend(
        args.backend,
        workers=args.workers,
        queue_dir=getattr(args, "queue_dir", None),
        lease_timeout=getattr(args, "lease_timeout", 60.0),
        wait_timeout=getattr(args, "wait_timeout", None),
    )


def _add_backend_args(p: argparse.ArgumentParser) -> None:
    from repro.harness.executor import BACKEND_NAMES, DEFAULT_QUEUE_DIR

    p.add_argument("--backend", default=None, choices=list(BACKEND_NAMES),
                   help="executor backend for evaluation cells (default: "
                        "serial, or the spawn pool when --workers > 1)")
    p.add_argument("--queue-dir", default=None,
                   help="shared queue directory for --backend queue "
                        f"(default {DEFAULT_QUEUE_DIR}); join more workers "
                        "with `repro.cli worker --queue-dir DIR`")
    p.add_argument("--lease-timeout", type=float, default=60.0,
                   help="queue lease staleness threshold in seconds; a "
                        "claim whose heartbeat is older is reclaimed")
    p.add_argument("--wait-timeout", type=float, default=None,
                   help="give up after this many seconds waiting for "
                        "external queue workers (default: wait forever)")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
    from repro.harness.experiments import quick_scenario
    from repro.harness.library import get_scenario
    from repro.harness.parallel import BaselineFactory
    from repro.harness.sweeps import sweep_schedulers
    from repro.harness.tables import format_table

    if args.window_jobs is None and args.scenario:
        scenarios = {
            name: get_scenario(name).with_engine(args.engine)
            for name in args.scenario
        }
    else:
        scenarios = {
            f"load-{load:g}": quick_scenario(load=load).with_engine(args.engine)
            for load in args.loads
        }
    schedulers = {
        name.strip(): BaselineFactory(name.strip())
        for name in args.schedulers.split(",") if name.strip()
    }
    if not schedulers:
        print("no schedulers given", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        max_bytes = None
        if args.cache_max_mb is not None:
            max_bytes = int(args.cache_max_mb * 1024 * 1024)
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR,
                            max_bytes=max_bytes)
    backend = _resolve_backend(args)
    if args.window_jobs is not None:
        from repro.harness.sweeps import sweep_windowed

        if not args.scenario:
            print("--window-jobs requires --scenario trace container "
                  "path(s)", file=sys.stderr)
            return 2
        missing = [p for p in args.scenario if not os.path.exists(p)]
        if missing:
            print(f"trace container(s) not found: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        rows = []
        for path in args.scenario:
            rows.extend(sweep_windowed(
                path, schedulers, args.window_jobs, engine=args.engine,
                max_ticks=args.max_ticks, trace_seed=args.base_seed,
                workers=args.workers, cache=cache, backend=backend,
            ))
    else:
        rows = sweep_schedulers(
            scenarios, schedulers, n_traces=args.traces,
            base_seed=args.base_seed, max_ticks=args.max_ticks,
            workers=args.workers, cache=cache, backend=backend,
        )
    print(format_table(rows, title=f"sweep ({args.workers} workers)"))
    if cache is not None:
        evicted = f", {cache.stats['evictions']} evicted" \
            if cache.stats["evictions"] else ""
        print(f"cache: {cache.stats['hits']} hits, "
              f"{cache.stats['misses']} misses{evicted} -> {cache.root}")
    if args.out:
        from repro.harness.results import ResultStore

        store = ResultStore()
        store.add_rows("sweep", rows)
        store.save(args.out)
        print(f"rows saved to {args.out}")
    return 0


def _cmd_leaderboard(args: argparse.Namespace) -> int:
    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
    from repro.harness.leaderboard import (
        DEFAULT_POLICY_DIR,
        AgentSpec,
        PolicyStore,
        build_leaderboard,
    )

    specs = [
        AgentSpec(algo=name.strip(), iterations=args.train_iterations,
                  seed=args.seed, warm_start=not args.no_warm_start,
                  n_train_traces=args.train_traces,
                  n_val_traces=args.val_traces)
        for name in args.agents.split(",") if name.strip()
    ]
    baselines = [b.strip() for b in args.baselines.split(",") if b.strip()]
    # Reject artifact-path typos up front: training can take hours and
    # must not complete before a bad --out suffix surfaces.
    for path in args.out or []:
        if not path.endswith((".json", ".md")):
            print(f"--out must end in .json or .md, got {path!r}",
                  file=sys.stderr)
            return 2
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    store = PolicyStore(args.policy_dir or DEFAULT_POLICY_DIR)
    result = build_leaderboard(
        scenario_names=args.scenarios, agents=specs, baselines=baselines,
        n_traces=args.traces, base_seed=args.base_seed, workers=args.workers,
        cache=cache, store=store, seed=args.seed,
        backend=_resolve_backend(args),
    )
    print(result.to_text())
    print(f"\npolicy store: {store.stats['trained']} trained, "
          f"{store.stats['hits']} reused -> {store.root}")
    if cache is not None:
        print(f"result cache: {cache.stats['hits']} hits, "
              f"{cache.stats['misses']} misses -> {cache.root}")
    from repro.util.io import atomic_write_text

    for path in args.out or []:
        text = result.to_markdown() if path.endswith(".md") \
            else result.to_json()
        atomic_write_text(path, text)
        print(f"leaderboard -> {path}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.harness.executor import queue_worker_loop

    done = queue_worker_loop(
        args.queue_dir,
        worker_id=args.worker_id,
        lease_timeout=args.lease_timeout,
        heartbeat=args.heartbeat,
        poll=args.poll,
        max_idle=args.max_idle,
        handle_signals=True,
    )
    print(f"worker finished: {done} cell(s) computed from {args.queue_dir}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.cache_command == "stats":
        entries = len(cache)
        size_mb = cache.size_bytes() / (1024 * 1024)
        totals = cache.counters()
        lookups = totals["hits"] + totals["misses"]
        rate = f"{totals['hits'] / lookups:.1%}" if lookups else "n/a"
        print(f"cache {cache.root}: {entries} entries, {size_mb:.2f} MiB")
        print(f"lifetime: {totals['hits']} hits, {totals['misses']} misses "
              f"(hit rate {rate}), {totals['evictions']} evictions")
        return 0
    # prune
    before = len(cache)
    cache.prune(int(args.max_mb * 1024 * 1024))
    cache.flush_counters()
    size_mb = cache.size_bytes() / (1024 * 1024)
    print(f"pruned {before - len(cache)} of {before} entries -> "
          f"{len(cache)} remain, {size_mb:.2f} MiB <= {args.max_mb:g} MiB")
    return 0


def _resolve_scenario(args: argparse.Namespace):
    """The scenario a train/evaluate command operates on.

    ``--scenario`` selects a registry name (or imported trace file);
    otherwise the synthetic quick scenario at ``--load`` is used.
    """
    from repro.harness.experiments import quick_scenario
    from repro.harness.library import get_scenario

    if getattr(args, "scenario", None):
        return get_scenario(args.scenario).with_engine(args.engine)
    return quick_scenario(load=args.load).with_engine(args.engine)


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.harness.experiments import train_drl
    from repro.nn.serialize import save_params

    scenario = _resolve_scenario(args)
    sched = train_drl(scenario, iterations=args.iterations, seed=args.seed,
                      algo=args.algo, num_envs=args.num_envs)
    save_params(sched.policy.net, args.out)
    what = args.scenario if args.scenario else f"load={args.load}"
    print(f"trained {args.algo} policy ({what}, "
          f"{args.iterations} iters, {args.num_envs} envs, "
          f"{args.engine} engine) -> {args.out}")
    return 0


def _load_policy(path: str, scenario) -> "object":
    from repro.core import DRLScheduler
    from repro.nn.serialize import load_params
    from repro.rl.policies import CategoricalPolicy

    env = scenario.eval_env(scenario.traces(1), seed=0)
    # The freshly initialized weights are overwritten by load_params
    # below; this RNG only shapes throwaway values.
    policy = CategoricalPolicy.for_sizes(
        env.encoder.obs_dim, env.actions.n, (128, 128),
        np.random.default_rng(0))  # repro: allow[DET001]
    load_params(policy.net, path)
    return DRLScheduler(policy, env.config, [p.name for p in scenario.platforms],
                        greedy=True)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.baselines import baseline_roster
    from repro.core import evaluate_scheduler
    from repro.harness.tables import format_table

    scenario = _resolve_scenario(args)
    traces = scenario.traces(args.traces)
    schedulers = dict(baseline_roster())
    if args.policy:
        schedulers["drl"] = _load_policy(args.policy, scenario)
    rows: List[dict] = []
    for name, sched in schedulers.items():
        reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                     max_ticks=scenario.max_ticks,
                                     engine=scenario.engine,
                                     workers=args.workers)
        rows.append({
            "scheduler": name,
            "miss_rate": float(np.mean([r.miss_rate for r in reports])),
            "mean_slowdown": float(np.mean([r.mean_slowdown for r in reports])),
            "mean_utilization": float(np.mean([r.mean_utilization for r in reports])),
        })
    rows.sort(key=lambda r: r["miss_rate"])
    what = args.scenario if args.scenario else f"load={args.load}"
    print(format_table(rows, title=f"evaluation ({what})"))
    return 0


# --- online serving -------------------------------------------------------

def _serve_policy(args: argparse.Namespace, scenario):
    """Resolve the serving policy and its human-readable description.

    Three sources, in precedence order: ``--policy-npz`` (trained weights
    saved by ``repro train``), ``--policy-store`` (a content-addressed
    key in the leaderboard :class:`PolicyStore`), and ``--policy`` (a
    baseline name from the heuristic roster).
    """
    from repro.baselines import baseline_roster

    if getattr(args, "policy_npz", None):
        return _load_policy(args.policy_npz, scenario), f"npz:{args.policy_npz}"
    if getattr(args, "policy_store", None):
        from repro.harness.leaderboard import DEFAULT_POLICY_DIR, PolicyStore

        store = PolicyStore(args.policy_dir or DEFAULT_POLICY_DIR)
        return (store.load_scheduler(args.policy_store),
                f"store:{args.policy_store[:12]}")
    roster = dict(baseline_roster())
    if args.policy not in roster:
        raise SystemExit(
            f"unknown baseline {args.policy!r}; choose from {sorted(roster)}")
    return roster[args.policy], args.policy


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import SchedulerService, run_server

    scenario = _resolve_scenario(args)
    policy, desc = _serve_policy(args, scenario)
    max_ticks = (args.max_ticks if args.max_ticks is not None
                 else scenario.max_ticks)
    service = SchedulerService(
        scenario.platforms, policy,
        max_ticks=max_ticks,
        drop_on_miss=args.drop_on_miss,
        state_dir=args.state_dir or None,
        checkpoint_every=args.checkpoint_every,
        policy_desc=desc,
    )
    return run_server(service, host=args.host, port=args.port,
                      http_port=args.http_port)


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.serve import (
        ReplayClient,
        batch_reference,
        dumps_metrics,
        trace_payloads,
    )

    scenario = _resolve_scenario(args)
    payloads = trace_payloads(scenario.trace(args.trace_seed))
    max_ticks = (args.max_ticks if args.max_ticks is not None
                 else scenario.max_ticks)

    if args.offline:
        # Batch half of the serving invariant: same payloads, same
        # canonical bytes, no server involved.
        policy, desc = _serve_policy(args, scenario)
        text = batch_reference(scenario.platforms, payloads, policy,
                               max_ticks=max_ticks,
                               drop_on_miss=args.drop_on_miss,
                               engine=args.engine)
        if args.out:
            from repro.util.io import atomic_write_text

            atomic_write_text(args.out, text)
            print(f"offline reference ({desc}, {len(payloads)} jobs) "
                  f"-> {args.out}")
        else:
            print(text, end="")
        return 0

    client = ReplayClient(
        state_dir=args.state_dir or None, host=args.host, port=args.port,
        tick_seconds=args.tick_seconds, compression=args.compression,
        connect_timeout=args.connect_timeout,
    )
    with client:
        metrics = client.pump(
            payloads,
            stop_after=args.stop_after,
            drain=not args.no_drain,
            shutdown=args.shutdown,
            log=lambda m: print(f"replay: {m}", flush=True),
        )
    if metrics is None:
        print(f"replay: stopped mid-stream after {client.submitted} "
              f"of {len(payloads)} submissions")
        return 0
    text = dumps_metrics(metrics)
    if args.out:
        from repro.util.io import atomic_write_text

        atomic_write_text(args.out, text)
        print(f"replayed {len(payloads)} jobs "
              f"({client.decisions} decisions) -> {args.out}")
    else:
        print(text, end="")
    return 0


# --- trace ingestion ------------------------------------------------------

def _ingest_config(args: argparse.Namespace):
    """Resolve the import's :class:`IngestConfig` through the preset chain.

    Precedence (lowest to highest): built-in ``IngestConfig`` defaults,
    the ``--preset`` field table, explicit CLI flags. Flags default to
    ``None`` ("not given"), so a preset's values survive unless the user
    actually typed the flag.
    """
    from repro.workload.ingest.presets import resolve_ingest

    overrides = {
        key: value
        for key, value in (
            ("tick_seconds", args.tick_seconds),
            ("max_jobs", args.max_jobs),
            ("subsample", args.subsample),
            ("target_load", args.target_load),
            ("max_parallelism_cap", args.max_parallelism),
            ("time_critical_fraction", args.tc_fraction),
            ("accel_fraction", args.accel_fraction),
            ("seed", args.seed),
        )
        if value is not None
    }
    if args.window is not None:
        overrides["window"] = tuple(args.window)
    return resolve_ingest(getattr(args, "preset", None), overrides=overrides)


def _columnar_spec(args: argparse.Namespace):
    import dataclasses

    from repro.workload.ingest import ALIBABA_LIKE_SPEC, GOOGLE_LIKE_SPEC, ColumnarSpec

    presets = {"alibaba": ALIBABA_LIKE_SPEC, "google": GOOGLE_LIKE_SPEC}
    spec_name = args.spec or "alibaba"
    # Explicitly-passed layout flags override the preset; None/False means
    # "not given" (argparse defaults), so presets keep their own values.
    overrides = {}
    if args.delimiter is not None:
        overrides["delimiter"] = args.delimiter
    if args.time_unit is not None:
        overrides["time_unit"] = args.time_unit
    if args.end_time_column is not None:
        overrides["end_time_column"] = args.end_time_column
    if args.no_header:
        overrides["has_header"] = False
    if args.columns:
        pairs = []
        for item in args.columns.split(","):
            field_name, _, column = item.partition("=")
            if not column:
                raise SystemExit(
                    f"--columns entries must look like field=column, got {item!r}")
            pairs.append((field_name.strip(), column.strip()))
        return ColumnarSpec(columns=tuple(pairs), **overrides)
    return dataclasses.replace(presets[spec_name], **overrides)


def _parse_archive(args: argparse.Namespace):
    from repro.workload.ingest import parse_columnar, parse_swf

    if args.format == "swf":
        return parse_swf(args.input)
    return parse_columnar(args.input, _columnar_spec(args))


def _platforms_for_import(args: argparse.Namespace, preset=None):
    from repro.sim.platform import Platform

    cpu = args.cpu_capacity if args.cpu_capacity is not None \
        else (preset.cpu_capacity if preset is not None else 24)
    gpu = args.gpu_capacity if args.gpu_capacity is not None \
        else (preset.gpu_capacity if preset is not None else 8)
    platforms = [Platform("cpu", cpu, 1.0)]
    if gpu > 0:
        platforms.append(Platform("gpu", gpu, 1.0))
    return platforms


def _apply_preset(args: argparse.Namespace):
    """Resolve ``--preset`` into format/spec defaults; returns the preset.

    Explicit ``--format`` / ``--spec`` flags win over the preset's
    values; without either a preset or ``--format``, the import cannot
    proceed (argparse can't express the either-or, so it is checked
    here).
    """
    from repro.workload.ingest.presets import get_preset

    preset = get_preset(args.preset) if getattr(args, "preset", None) else None
    if args.format is None:
        if preset is None:
            raise SystemExit(
                "trace import needs --format (swf|columnar) or --preset")
        args.format = preset.format
    if preset is not None and args.spec is None and preset.spec is not None:
        args.spec = preset.spec
    return preset


def _preset_fit_report(records, config):
    """Fitted arrival-process / Amdahl-sigma lines for a preset import.

    Returns ``(lines, sigma_range)``: the human-readable fit summary and
    the narrowed ``sigma_range`` when multi-width resubmission families
    exist (``None`` otherwise).
    """
    from repro.workload.ingest.presets import (
        fit_arrival_process,
        fit_family_sigmas,
        fitted_sigma_range,
    )

    lines = []
    submits = sorted(r.submit_time for r in records if r.usable())
    if len(submits) >= 2 and submits[-1] > submits[0]:
        lines.append("  fitted arrivals: "
                     f"{fit_arrival_process(submits, config.tick_seconds)}")
    families = fit_family_sigmas(records)
    sigma_range = None
    if families:
        sigma_range = fitted_sigma_range(records, default=config.sigma_range)
        lines.append(f"  fitted Amdahl sigma: {len(families)} multi-width "
                     f"families -> sigma_range {sigma_range}")
    else:
        lines.append("  fitted Amdahl sigma: no multi-width resubmission "
                     f"families; keeping sigma_range {config.sigma_range}")
    return lines, sigma_range


def _clamp_note(stats) -> str:
    """One-line clamp/skip summary of an :class:`IngestStats`."""
    return (f"  selection: {stats.n_selected} kept of {stats.n_records} "
            f"({stats.n_unusable} unusable, "
            f"{stats.n_status_filtered} status-filtered, "
            f"{stats.n_windowed_out} outside window, "
            f"{stats.n_subsampled_out} subsampled out, "
            f"{stats.n_over_cap} over cap); "
            f"clamped: {stats.n_clamped_duration} durations, "
            f"{stats.n_clamped_work} works")


def _cmd_trace_import(args: argparse.Namespace) -> int:
    from repro.workload.ingest import (
        IngestStats,
        measured_load,
        normalize_records,
        stream_normalize_columnar,
        stream_normalize_swf,
    )
    from repro.workload.traces import save_trace, save_trace_shards

    preset = _apply_preset(args)
    platforms = _platforms_for_import(args, preset)
    config = _ingest_config(args)
    stats = IngestStats()

    def write(jobs) -> int:
        """Persist ``jobs`` (list or stream) to ``--out``; returns count."""
        if args.shard_jobs:
            manifest = save_trace_shards(jobs, args.out,
                                         jobs_per_shard=args.shard_jobs)
            return manifest["n_jobs"]
        return save_trace(jobs, args.out)

    if args.stream:
        # Two-pass streaming normalization: records are never
        # materialized, so archive-scale logs import in bounded memory.
        # Output is byte-identical to the materialized path.
        if not args.shard_jobs and args.out.endswith((".json", ".json.gz")):
            print("note: --out *.json holds one JSON array, so the payload "
                  "is materialized; use *.jsonl[.gz] or --shard-jobs for "
                  "bounded memory", file=sys.stderr)
        if args.format == "swf":
            jobs_iter = stream_normalize_swf(args.input, config, platforms,
                                             stats=stats)
        else:
            jobs_iter = stream_normalize_columnar(
                args.input, _columnar_spec(args), config, platforms,
                stats=stats)
        if preset is not None:
            print(f"note: --stream skips the --preset arrival/sigma fits "
                  "(they need the materialized record set)", file=sys.stderr)
        n_jobs = write(jobs_iter)
        if not n_jobs:
            # The container was created before the stream turned out
            # empty; remove exactly what this run wrote — the manifest
            # (an empty import emits no shards) or the output file —
            # never pre-existing files the user keeps in --out.
            import os

            from repro.workload.traces import MANIFEST_NAME

            try:
                if os.path.isdir(args.out):
                    os.unlink(os.path.join(args.out, MANIFEST_NAME))
                    os.rmdir(args.out)   # only if nothing else is in it
                else:
                    os.unlink(args.out)
            except OSError:
                pass
            print(f"no usable jobs in {args.input!r} after filtering "
                  f"({stats.n_records} records scanned)", file=sys.stderr)
            return 2
        print(f"imported {n_jobs} jobs from {args.input} "
              f"(streamed, {config.tick_seconds:g}s/tick)")
        print(_clamp_note(stats))
        print(f"trace -> {args.out}")
        return 0

    meta, records = _parse_archive(args)
    fit_lines: List[str] = []
    if preset is not None:
        # The preset fits: arrival-process shape from the submit series,
        # per-family Amdahl sigma from multi-width resubmissions (the
        # narrowed range feeds the normalization below).
        fit_lines, sigma_range = _preset_fit_report(records, config)
        if sigma_range is not None:
            import dataclasses

            config = dataclasses.replace(config, sigma_range=sigma_range)
    jobs = normalize_records(records, config, platforms, stats=stats)
    if not jobs:
        print(f"no usable jobs in {args.input!r} after filtering "
              f"({meta.n_records} records parsed, {meta.n_skipped} skipped)",
              file=sys.stderr)
        return 2
    n_jobs = write(jobs)
    load = measured_load(jobs, platforms)
    horizon = max(j.arrival_time for j in jobs) + 1
    n_tc = sum(1 for j in jobs if j.job_class.startswith("tc"))
    preset_note = f"; preset {args.preset}" if preset is not None else ""
    print(f"imported {n_jobs} jobs from {args.input} ({meta.format}; "
          f"{meta.n_skipped} lines skipped{preset_note})")
    print(f"  horizon: {horizon} ticks ({config.tick_seconds:g}s/tick), "
          f"offered load: {load:.3f}, "
          f"classes: {n_tc} time-critical / {len(jobs) - n_tc} best-effort")
    for line in fit_lines:
        print(line)
    print(_clamp_note(stats))
    print(f"trace -> {args.out}")
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    from repro.harness.tables import format_table
    from repro.workload.traces import looks_like_trace_path

    if args.format == "json" or looks_like_trace_path(args.input):
        from collections import Counter

        from repro.workload.traces import load_trace

        jobs = load_trace(args.input)
        if not jobs:
            print("trace is empty")
            return 0
        horizon = max(j.arrival_time for j in jobs) + 1
        classes = Counter(j.job_class for j in jobs)
        works = sorted(j.work for j in jobs)
        rows = [{
            "jobs": len(jobs),
            "horizon_ticks": horizon,
            "classes": " ".join(f"{k}:{v}" for k, v in sorted(classes.items())),
            "work_p50": round(works[len(works) // 2], 2),
            "work_max": round(works[-1], 2),
            "max_k_max": max(j.max_parallelism for j in jobs),
        }]
        print(format_table(rows, title=f"trace {args.input}"))
        return 0

    from repro.workload.ingest import IngestConfig, count_clamps, record_stats

    meta, records = _parse_archive(args)
    stats = record_stats(records)
    # Previously-silent drops and floors, surfaced: how many records a
    # normalization at --tick-seconds would skip or clamp.
    n_dur, n_work = count_clamps(
        records, IngestConfig(tick_seconds=args.tick_seconds))
    stats["clamped_duration"] = n_dur
    stats["clamped_work"] = n_work
    rows = [{k: (round(v, 2) if isinstance(v, float) else v)
             for k, v in stats.items()}]
    print(format_table(rows, title=f"{meta.format} archive {args.input} "
                                   f"({meta.n_skipped} lines skipped, "
                                   f"{meta.n_unusable} unusable; clamps at "
                                   f"{args.tick_seconds:g}s/tick)"))
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from repro.workload.traces import iter_trace, save_trace, save_trace_shards

    # Stream job-by-job: converting between containers (.json <-> .jsonl
    # <-> shards) never materializes the trace, so archive-scale traces
    # re-encode in bounded memory (except into .json, which is one array).
    jobs = iter_trace(args.input)
    if args.shard_jobs:
        n = save_trace_shards(jobs, args.out,
                              jobs_per_shard=args.shard_jobs)["n_jobs"]
    else:
        n = save_trace(jobs, args.out)
    print(f"converted {n} jobs: {args.input} -> {args.out}")
    return 0


# --- determinism-contract linter -----------------------------------------

def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import lint as L

    if args.list_rules:
        registry = L.rule_registry()
        width = max(len(r) for r in registry)
        for rule_id, rule in registry.items():
            fix = " [fixable]" if getattr(rule, "fixable", False) else ""
            print(f"{rule_id:<{width}}  {rule.description}{fix}")
        return 0
    try:
        rules = L.resolve_rules(args.rules)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.fix:
        fixable = [r for r in rules if r in L.FIXABLE_RULES]
        n_edits = sum(L.fix_file(f, fixable)
                      for f in L.iter_python_files(paths))
        print(f"autofix: {n_edits} edit(s) applied", file=sys.stderr)

    result = L.lint_paths(paths, rules)
    findings = result.all_findings

    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is None and Path(L.DEFAULT_BASELINE_NAME).is_file():
        baseline_path = Path(L.DEFAULT_BASELINE_NAME)
    if args.update_baseline:
        target = baseline_path or Path(L.DEFAULT_BASELINE_NAME)
        L.save_baseline(target, findings)
        print(f"baseline: {len(findings)} finding(s) -> {target}")
        return 0
    baseline = None
    if baseline_path is not None:
        try:
            baseline = L.load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
    new, n_baselined, stale = L.apply_baseline(findings, baseline)
    render = L.render_json if args.format == "json" else L.render_text
    print(render(new, result.n_files, result.n_waived, n_baselined, stale))
    return 1 if (new or stale) else 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    from repro.harness.library import list_scenarios
    from repro.workload.fuzz.archive import archived_names, load_archive

    entries = dict(list_scenarios())
    names = archived_names()
    fuzz = load_archive() if names else {}
    for name in names:
        entry = fuzz.get(name, {})
        gap = entry.get("gap")
        desc = "fuzz-archive stress scenario"
        if isinstance(gap, (int, float)):
            desc += (f" (gap {gap:+.4f} vs "
                     f"{entry.get('best_baseline', '?')})")
        entries[name] = desc
    width = max(len(n) for n in entries)
    for name, desc in entries.items():
        print(f"{name:<{width}}  {desc}")
    return 0


# --- adversarial scenario fuzzing ----------------------------------------

def _fuzz_policy(args: argparse.Namespace):
    """Resolve the policy under attack -> (factory, label, fingerprint).

    ``--policy-store KEY`` attacks an existing store entry; otherwise a
    policy is trained (or reused — the store is content-addressed) on
    ``--train-scenario`` with the requested budget. Either way the
    search evaluates the *stored bytes* through a picklable
    :class:`StoredPolicyFactory`, so workers and resumed runs see
    bit-identical weights.
    """
    from repro.harness.leaderboard import (
        DEFAULT_POLICY_DIR,
        AgentSpec,
        PolicyStore,
        StoredPolicyFactory,
    )

    store = PolicyStore(args.policy_dir or DEFAULT_POLICY_DIR)
    if getattr(args, "policy_store", None):
        key = args.policy_store
        if key not in store:
            raise SystemExit(
                f"policy {key[:12]}... not in store {store.root}; train "
                "one with `repro.cli leaderboard` or drop --policy-store")
        label = f"store:{key[:12]}"
    else:
        from repro.harness.library import get_scenario

        scenario = get_scenario(args.train_scenario)
        spec = AgentSpec(algo=args.agent, iterations=args.train_iterations,
                         seed=args.train_seed)
        key = store.get_or_train(args.train_scenario, scenario, spec)
        label = f"{args.agent}@{args.train_scenario}"
    return StoredPolicyFactory(str(store.root), key), label, key


def _fuzz_cache(args: argparse.Namespace):
    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache

    if args.no_cache:
        return None
    return ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)


def _print_fuzz_result(result, label: str) -> None:
    print(f"fuzz: {result.evaluated} candidate(s) over "
          f"{result.generations} generation(s) against {label}")
    for entry in sorted(result.archive,
                        key=lambda e: (-e["gap"], e["name"])):
        print(f"  {entry['name']}  gap {entry['gap']:+.4f} "
              f"({entry['metric']}: policy {entry['policy_metric']:.4f} "
              f"vs {entry['best_baseline']} "
              f"{entry['baseline_metric']:.4f})")
    print(f"archive -> {result.archive_file}")
    print(f"state -> {result.state_file}")


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    from repro.workload.fuzz import FuzzConfig, run_fuzz
    from repro.workload.fuzz.archive import fuzz_dir

    baselines = tuple(b.strip() for b in args.baselines.split(",")
                      if b.strip())
    try:
        config = FuzzConfig(
            population=args.population, generations=args.generations,
            elites=args.elites, mutation_scale=args.mutation_scale,
            crossover_prob=args.crossover_prob, n_traces=args.traces,
            base_seed=args.base_seed, seed=args.search_seed,
            metric=args.metric, baselines=baselines,
            max_archive=args.max_archive, min_gap=args.min_gap,
            horizon=args.horizon, max_ticks=args.max_ticks,
            cpu_capacity=args.cpu_capacity, gpu_capacity=args.gpu_capacity,
            engine=args.engine,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    factory, label, key = _fuzz_policy(args)
    result = run_fuzz(
        factory, label, key, fuzz_dir(args.out_dir), config=config,
        workers=args.workers, cache=_fuzz_cache(args),
        backend=_resolve_backend(args),
        progress=lambda m: print(f"fuzz: {m}", flush=True),
    )
    _print_fuzz_result(result, label)
    return 0


def _cmd_fuzz_resume(args: argparse.Namespace) -> int:
    from repro.harness.leaderboard import (
        DEFAULT_POLICY_DIR,
        PolicyStore,
        StoredPolicyFactory,
    )
    from repro.workload.fuzz import run_fuzz
    from repro.workload.fuzz.archive import fuzz_dir
    from repro.workload.fuzz.search import load_state

    out_dir = fuzz_dir(args.out_dir)
    try:
        state = load_state(out_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    key = state["policy"]["fingerprint"]
    label = state["policy"]["label"]
    store = PolicyStore(args.policy_dir or DEFAULT_POLICY_DIR)
    if key not in store:
        print(f"stored policy {key[:12]}... missing from {store.root}; "
              "point --policy-dir at the store the run was started with",
              file=sys.stderr)
        return 2
    result = run_fuzz(
        StoredPolicyFactory(str(store.root), key), label, key, out_dir,
        workers=args.workers, cache=_fuzz_cache(args),
        backend=_resolve_backend(args), resume=True,
        progress=lambda m: print(f"fuzz: {m}", flush=True),
    )
    _print_fuzz_result(result, label)
    return 0


def _cmd_fuzz_archive(args: argparse.Namespace) -> int:
    from repro.harness.tables import format_table
    from repro.workload.fuzz.archive import archive_path, load_archive

    try:
        entries = load_archive(args.out_dir)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not entries:
        print(f"no fuzz archive at {archive_path(args.out_dir)}; "
              "create one with `repro.cli fuzz run`")
        return 0
    rows = [
        {
            "scenario": e["name"],
            "gap": e["gap"],
            "metric": e["metric"],
            "policy": e["policy"]["label"],
            "best_baseline": e["best_baseline"],
            "generation": e["generation"],
        }
        for e in entries.values()
    ]
    rows.sort(key=lambda r: (-r["gap"], r["scenario"]))
    print(format_table(rows, title=f"fuzz archive ({len(rows)} entries)"))
    print(f"use any name via --scenario (set REPRO_FUZZ_DIR="
          f"{os.path.dirname(archive_path(args.out_dir)) or '.'} "
          "if not the default archive)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Elasticity-compatible heterogeneous DRL resource "
                    "management for time-critical computing — reproduction CLI.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", help="experiment name, e.g. e02_main_table")
    run.add_argument("--out", help="save rows as JSON (ResultStore format)")
    run.add_argument("--csv", help="save rows as CSV")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--workers", type=int, default=1,
                     help="process-pool shards for evaluation traces")
    run.add_argument("--scenario", default=None,
                     help="run on a named scenario (or imported trace "
                          "container) for experiments that accept one "
                          "(e.g. e02_main_table, e03_load_sweep)")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="sharded scheduler-comparison sweep with result cache")
    sweep.add_argument("--loads", type=float, nargs="+", default=[0.5, 0.8],
                       help="offered loads, one scenario each")
    sweep.add_argument("--scenario", nargs="+", default=None,
                       help="named scenario(s) from the registry (or imported "
                            "trace files); overrides --loads")
    sweep.add_argument("--schedulers", default="fifo,edf,tetris,greedy-elastic",
                       help="comma-separated baseline names")
    sweep.add_argument("--traces", type=int, default=3,
                       help="paired trace seeds per scenario")
    sweep.add_argument("--base-seed", type=int, default=1000)
    sweep.add_argument("--max-ticks", type=int, default=None)
    sweep.add_argument("--engine", default="tick", choices=["tick", "event"])
    sweep.add_argument("--workers", type=int, default=1,
                       help="process-pool shards for evaluation cells")
    sweep.add_argument("--no-cache", action="store_true",
                       help="recompute every cell (skip the result cache)")
    sweep.add_argument("--cache-dir", default=None,
                       help="result-cache directory (default .repro-cache)")
    sweep.add_argument("--cache-max-mb", type=float, default=None,
                       help="cap the cache directory at this size; "
                            "least-recently-used entries are evicted")
    sweep.add_argument("--out", help="save rows as JSON (ResultStore format)")
    sweep.add_argument("--window-jobs", type=int, default=None,
                       help="windowed evaluation: split each --scenario "
                            "trace container into segments of at most this "
                            "many jobs, evaluate them as independent cells, "
                            "and merge exactly (bounds peak memory)")
    _add_backend_args(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    lb = sub.add_parser(
        "leaderboard",
        help="train each agent once per scenario; rank every policy and "
             "baseline on every scenario (cross-scenario matrix)")
    lb.add_argument("--scenarios", nargs="+",
                    default=["quick", "swf-fixture", "columnar-fixture"],
                    help="registry names (or trace-container paths)")
    lb.add_argument("--agents", default="ppo",
                    help="comma-separated trainable algorithms "
                         "(reinforce, a2c, ppo)")
    lb.add_argument("--baselines", default="edf,tetris,greedy-elastic,fifo",
                    help="comma-separated heuristic anchors ('' for none)")
    lb.add_argument("--train-iterations", type=int, default=40,
                    help="training iterations per (scenario, agent)")
    lb.add_argument("--train-traces", type=int, default=8,
                    help="fixed training traces per scenario")
    lb.add_argument("--val-traces", type=int, default=3,
                    help="validation traces for best-checkpoint selection")
    lb.add_argument("--no-warm-start", action="store_true",
                    help="skip the behavior-cloning warm start")
    lb.add_argument("--traces", type=int, default=3,
                    help="paired evaluation trace seeds per scenario")
    lb.add_argument("--base-seed", type=int, default=1000)
    lb.add_argument("--seed", type=int, default=0,
                    help="training seed")
    lb.add_argument("--workers", type=int, default=1,
                    help="process-pool shards for evaluation cells")
    lb.add_argument("--no-cache", action="store_true",
                    help="recompute every evaluation cell")
    lb.add_argument("--cache-dir", default=None,
                    help="result-cache directory (default .repro-cache)")
    lb.add_argument("--policy-dir", default=None,
                    help="policy-store directory (default .repro-policies)")
    lb.add_argument("--out", action="append", default=None,
                    help="write the leaderboard artifact (*.json or *.md; "
                         "repeatable)")
    _add_backend_args(lb)
    lb.set_defaults(func=_cmd_leaderboard)

    train = sub.add_parser("train", help="train a DRL policy and save it")
    train.add_argument("--load", type=float, default=0.7)
    train.add_argument("--scenario", default=None,
                       help="train on a named scenario instead of the "
                            "synthetic quick scenario at --load")
    train.add_argument("--iterations", type=int, default=60)
    train.add_argument("--algo", default="ppo",
                       choices=["reinforce", "a2c", "ppo"])
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", default="policy.npz")
    train.add_argument("--num-envs", type=int, default=1,
                       help="parallel environments for batched rollouts")
    train.add_argument("--engine", default="tick", choices=["tick", "event"],
                       help="simulation driver (event = idle fast-forward)")
    train.set_defaults(func=_cmd_train)

    ev = sub.add_parser("evaluate",
                        help="compare baselines (and a saved policy) on traces")
    ev.add_argument("--policy", default=None, help="path from `train --out`")
    ev.add_argument("--load", type=float, default=0.7)
    ev.add_argument("--scenario", default=None,
                    help="evaluate on a named scenario instead of the "
                         "synthetic quick scenario at --load")
    ev.add_argument("--traces", type=int, default=3)
    ev.add_argument("--engine", default="tick", choices=["tick", "event"],
                    help="simulation driver (event = idle fast-forward)")
    ev.add_argument("--workers", type=int, default=1,
                    help="process-pool shards for evaluation traces")
    ev.set_defaults(func=_cmd_evaluate)

    sub.add_parser(
        "scenarios", help="list the named scenario registry"
    ).set_defaults(func=_cmd_scenarios)

    fuzz = sub.add_parser(
        "fuzz",
        help="adversarial scenario search: find generator settings where a "
             "trained policy loses to the best heuristic baseline, and "
             "archive them as named fuzz/<fingerprint> stress scenarios")
    fsub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    def add_fuzz_shared_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--out-dir", default=None,
                       help="fuzz state + archive directory (default "
                            ".repro-fuzz, or $REPRO_FUZZ_DIR)")
        p.add_argument("--policy-dir", default=None,
                       help="policy-store root (default .repro-policies)")
        p.add_argument("--workers", type=int, default=1,
                       help="process-pool shards for evaluation cells")
        p.add_argument("--no-cache", action="store_true",
                       help="recompute every evaluation cell")
        p.add_argument("--cache-dir", default=None,
                       help="result-cache directory (default .repro-cache)")
        _add_backend_args(p)

    frun = fsub.add_parser(
        "run", help="start a fresh adversarial search (checkpointed per "
                    "generation; see `fuzz resume`)")
    frun.add_argument("--policy-store", default=None, metavar="KEY",
                      help="attack an existing policy-store entry instead "
                           "of training one")
    frun.add_argument("--train-scenario", default="swf-fixture",
                      help="scenario the attacked policy is trained on "
                           "when --policy-store is not given (the store "
                           "is content-addressed: re-runs retrain nothing)")
    frun.add_argument("--agent", default="ppo",
                      choices=["reinforce", "a2c", "ppo"])
    frun.add_argument("--train-iterations", type=int, default=12)
    frun.add_argument("--train-seed", type=int, default=0)
    frun.add_argument("--population", type=int, default=8,
                      help="candidate scenarios per generation")
    frun.add_argument("--generations", type=int, default=3)
    frun.add_argument("--elites", type=int, default=2,
                      help="top candidates carried over unchanged")
    frun.add_argument("--mutation-scale", type=float, default=0.25,
                      help="gaussian mutation scale, fraction of each "
                           "knob's range")
    frun.add_argument("--crossover-prob", type=float, default=0.5)
    frun.add_argument("--traces", type=int, default=2,
                      help="paired trace seeds per candidate evaluation")
    frun.add_argument("--base-seed", type=int, default=1000)
    frun.add_argument("--search-seed", type=int, default=0,
                      help="root seed of the counter-based search streams "
                           "(sampling, mutation, crossover, selection)")
    frun.add_argument("--metric", default="miss_rate",
                      help="MetricsReport attribute the transfer gap is "
                           "measured on (lower = better)")
    frun.add_argument("--baselines", default="edf,greedy-elastic,tetris",
                      help="comma-separated heuristic anchors; the gap is "
                           "policy minus the best of these")
    frun.add_argument("--max-archive", type=int, default=8,
                      help="archive at most this many top candidates")
    frun.add_argument("--min-gap", type=float, default=None,
                      help="archive only candidates whose gap exceeds this "
                           "(default: keep the top --max-archive "
                           "regardless of sign)")
    frun.add_argument("--horizon", type=int, default=60,
                      help="arrival horizon in ticks for candidate traces")
    frun.add_argument("--max-ticks", type=int, default=400)
    frun.add_argument("--cpu-capacity", type=int, default=24)
    frun.add_argument("--gpu-capacity", type=int, default=8)
    frun.add_argument("--engine", default="tick", choices=["tick", "event"])
    add_fuzz_shared_args(frun)
    frun.set_defaults(func=_cmd_fuzz_run)

    fresume = fsub.add_parser(
        "resume", help="re-enter a checkpointed search at the first "
                       "unfinished generation (same trajectory, usually "
                       "straight from cache)")
    add_fuzz_shared_args(fresume)
    fresume.set_defaults(func=_cmd_fuzz_resume)

    farchive = fsub.add_parser(
        "archive", help="list the archived stress scenarios with their "
                        "measured gaps")
    farchive.add_argument("--out-dir", default=None,
                          help="fuzz archive directory (default "
                               ".repro-fuzz, or $REPRO_FUZZ_DIR)")
    farchive.set_defaults(func=_cmd_fuzz_archive)

    lint_p = sub.add_parser(
        "lint",
        help="determinism-contract linter: AST checks for unseeded RNG, "
             "unsorted filesystem iteration, wall-clock reads, set-order "
             "leaks, non-atomic/non-canonical writes, and snapshot-"
             "surface completeness (exit 1 on findings)")
    lint_p.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    lint_p.add_argument("--format", default="text",
                        choices=["text", "json"],
                        help="report format")
    lint_p.add_argument("--baseline", default=None,
                        help="grandfathered-findings baseline file "
                             "(default: ./lint-baseline.json when present)")
    lint_p.add_argument("--update-baseline", action="store_true",
                        help="record the current findings as the baseline "
                             "instead of failing on them")
    lint_p.add_argument("--rules", nargs="+", default=None,
                        help="run only these rule ids (default: all)")
    lint_p.add_argument("--fix", action="store_true",
                        help="apply mechanical autofixes (wrap sorted(...), "
                             "add sort_keys=True) before reporting")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    lint_p.set_defaults(func=_cmd_lint)

    worker = sub.add_parser(
        "worker",
        help="join a queue-backend evaluation as an extra worker process: "
             "lease cells from the shared queue directory until the batch "
             "drains")
    worker.add_argument("--queue-dir", required=True,
                        help="shared queue directory of the driver run "
                             "(its --backend queue --queue-dir)")
    worker.add_argument("--worker-id", default=None,
                        help="stable worker identity for claim files "
                             "(default host-pid based)")
    worker.add_argument("--lease-timeout", type=float, default=60.0,
                        help="reclaim claims whose heartbeat is older "
                             "than this many seconds")
    worker.add_argument("--heartbeat", type=float, default=5.0,
                        help="seconds between claim heartbeats")
    worker.add_argument("--poll", type=float, default=0.2,
                        help="seconds between queue polls when idle")
    worker.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many idle seconds even if "
                             "no batch manifest appears (default: only "
                             "exit when the batch completes)")
    worker.set_defaults(func=_cmd_worker)

    def _add_serve_policy_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--policy", default="edf",
                       help="baseline scheduler name (see `repro scenarios`)")
        p.add_argument("--policy-npz", default=None,
                       help="trained policy weights from `repro train`")
        p.add_argument("--policy-store", default=None,
                       help="content-addressed key in the leaderboard "
                            "policy store")
        p.add_argument("--policy-dir", default=None,
                       help="policy-store root (default .repro-policies)")

    def _add_serve_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scenario", default=None,
                       help="named scenario from the registry (default: "
                            "the synthetic quick scenario at --load)")
        p.add_argument("--load", type=float, default=0.7)
        p.add_argument("--engine", default="tick", choices=["tick", "event"])
        p.add_argument("--max-ticks", type=int, default=None,
                       help="horizon override (default: the scenario's)")
        p.add_argument("--drop-on-miss", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="run the scheduling service: accept live job submissions over "
             "an NDJSON socket, answer with policy decisions, checkpoint "
             "for crash-consistent restart")
    _add_serve_scenario_args(serve)
    _add_serve_policy_args(serve)
    serve.add_argument("--state-dir", default=".repro-serve",
                       help="rolling checkpoint + endpoint directory "
                            "('' disables checkpointing)")
    serve.add_argument("--checkpoint-every", type=int, default=16,
                       help="checkpoint after every N accepted submissions")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="NDJSON socket port (0 picks an ephemeral one, "
                            "advertised in <state-dir>/ENDPOINT.json)")
    serve.add_argument("--http-port", type=int, default=None,
                       help="also expose the HTTP shim on this port "
                            "(0 for ephemeral)")
    serve.set_defaults(func=_cmd_serve)

    replay = sub.add_parser(
        "replay",
        help="pump a scenario trace into a running server at configurable "
             "time compression (or compute the offline batch reference)")
    _add_serve_scenario_args(replay)
    _add_serve_policy_args(replay)
    replay.add_argument("--trace-seed", type=int, default=1000,
                        help="trace seed (matches the evaluate base seed)")
    replay.add_argument("--state-dir", default=".repro-serve",
                        help="server state dir for endpoint discovery")
    replay.add_argument("--host", default=None,
                        help="explicit server host (skips endpoint discovery)")
    replay.add_argument("--port", type=int, default=None)
    replay.add_argument("--tick-seconds", type=float, default=0.0,
                        help="real seconds per sim tick before compression "
                             "(0 = as fast as possible)")
    replay.add_argument("--compression", type=float, default=1.0,
                        help="time-compression factor (pacing divides by it)")
    replay.add_argument("--connect-timeout", type=float, default=15.0,
                        help="seconds to wait for a (re)started server")
    replay.add_argument("--stop-after", type=int, default=None,
                        help="exit once the server holds this many "
                             "submissions, without draining (CI kill hook)")
    replay.add_argument("--no-drain", action="store_true",
                        help="fetch current metrics instead of running the "
                             "workload to completion")
    replay.add_argument("--shutdown", action="store_true",
                        help="ask the server to checkpoint and exit after "
                             "the replay")
    replay.add_argument("--offline", action="store_true",
                        help="no server: run the batch reference on the "
                             "same payloads and emit canonical metrics")
    replay.add_argument("--out", default=None,
                        help="write canonical metrics JSON here")
    replay.set_defaults(func=_cmd_replay)

    cache_p = sub.add_parser(
        "cache", help="inspect or prune the persistent result cache")
    csub = cache_p.add_subparsers(dest="cache_command", required=True)
    cstats = csub.add_parser(
        "stats", help="entry count, size, lifetime hit/miss/eviction totals")
    cstats.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default .repro-cache)")
    cstats.set_defaults(func=_cmd_cache)
    cprune = csub.add_parser(
        "prune", help="evict least-recently-used entries down to a size cap")
    cprune.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default .repro-cache)")
    cprune.add_argument("--max-mb", type=float, required=True,
                        help="target cache size in MiB")
    cprune.set_defaults(func=_cmd_cache)

    trace = sub.add_parser(
        "trace", help="ingest and inspect real cluster traces")
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    def add_archive_args(p, need_format_default=None, format_required=True):
        p.add_argument("--input", required=True,
                       help="archive file (SWF or CSV; *.gz transparently)")
        p.add_argument("--format", default=need_format_default,
                       choices=["swf", "columnar"] +
                               (["json"] if need_format_default == "json" else []),
                       required=format_required and need_format_default is None,
                       help="archive format"
                            + ("" if format_required
                               else " (default: the --preset's format)"))
        p.add_argument("--spec", default=None,
                       choices=["alibaba", "google"],
                       help="columnar preset (start/end second pairs vs "
                            "microsecond event layout)")
        p.add_argument("--columns", default=None,
                       help="custom columnar mapping field=column,... "
                            "(overrides --spec)")
        p.add_argument("--delimiter", default=None,
                       help="override the spec's delimiter")
        p.add_argument("--time-unit", default=None, choices=["s", "ms", "us"],
                       help="override the spec's time unit")
        p.add_argument("--end-time-column", default=None,
                       help="derive run_time = end - start from this column")
        p.add_argument("--no-header", action="store_true",
                       help="columns are 0-based indices, not header names")

    timport = tsub.add_parser(
        "import", help="normalize an archive into a repo trace container")
    add_archive_args(timport, format_required=False)
    timport.add_argument("--preset", default=None,
                         choices=["google-2019", "kit-fh2", "sdsc-sp2"],
                         help="archive preset: resolves format, columnar "
                              "spec, platform capacities, and every ingest "
                              "field for a well-known public archive; any "
                              "flag below still overrides its field")
    timport.add_argument("--out", required=True,
                         help="output trace (*.json[.gz], *.jsonl[.gz], or "
                              "a shard directory with --shard-jobs)")
    timport.add_argument("--stream", action="store_true",
                         help="two-pass streaming normalization: archive-"
                              "scale logs import in bounded memory, output "
                              "byte-identical to the materialized path "
                              "(requires submit-time-sorted archives)")
    timport.add_argument("--shard-jobs", type=int, default=None,
                         help="write --out as a sharded JSONL directory "
                              "with this many jobs per shard")
    timport.add_argument("--tick-seconds", type=float, default=None,
                         help="archive seconds per simulator tick "
                              "(default 60, or the preset's)")
    timport.add_argument("--max-jobs", type=int, default=None)
    timport.add_argument("--subsample", type=float, default=None,
                         help="seeded keep-fraction in (0, 1] (default 1)")
    timport.add_argument("--window", type=float, nargs=2, default=None,
                         metavar=("START", "END"),
                         help="seconds window relative to first submit")
    timport.add_argument("--target-load", type=float, default=None,
                         help="rescale arrivals to this offered load")
    timport.add_argument("--max-parallelism", type=int, default=None,
                         help="clip archive widths to this cap "
                              "(default 16, or the preset's)")
    timport.add_argument("--tc-fraction", type=float, default=None,
                         help="share of jobs synthesized time-critical "
                              "(default 0.4, or the preset's)")
    timport.add_argument("--accel-fraction", type=float, default=None,
                         help="share of jobs eligible for the accelerator "
                              "(default 0.25, or the preset's)")
    timport.add_argument("--seed", type=int, default=None,
                         help="synthesis seed (class/deadline/subsample; "
                              "default 0)")
    timport.add_argument("--cpu-capacity", type=int, default=None,
                         help="simulator CPU pool size (default 24, or "
                              "the preset's)")
    timport.add_argument("--gpu-capacity", type=int, default=None,
                         help="0 disables the accelerator platform "
                              "(default 8, or the preset's)")
    timport.set_defaults(func=_cmd_trace_import)

    tstats = tsub.add_parser(
        "stats", help="summarize an archive or an imported trace")
    add_archive_args(tstats, need_format_default="json")
    tstats.add_argument("--tick-seconds", type=float, default=60.0,
                        help="tick size used to report how many records a "
                             "normalization would clamp (archive formats)")
    tstats.set_defaults(func=_cmd_trace_stats)

    tconvert = tsub.add_parser(
        "convert", help="re-encode a trace between containers "
                        "(.json[.gz] <-> .jsonl[.gz] <-> shard directory)")
    tconvert.add_argument("--input", required=True)
    tconvert.add_argument("--out", required=True)
    tconvert.add_argument("--shard-jobs", type=int, default=None,
                          help="write --out as a sharded JSONL directory "
                               "with this many jobs per shard")
    tconvert.set_defaults(func=_cmd_trace_convert)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
