"""Return and advantage estimation (fully vectorized).

The reverse-scan recurrences (discounted returns, GAE) are implemented
with a single backwards loop over the *time* axis only — O(T) with NumPy
scalars, no per-element Python overhead beyond the unavoidable scan.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "discounted_returns",
    "n_step_returns",
    "gae_advantages",
    "normalize_advantages",
]


def discounted_returns(rewards: np.ndarray, gamma: float, bootstrap: float = 0.0) -> np.ndarray:
    """Discounted returns ``G_t = r_t + gamma * G_{t+1}``.

    ``bootstrap`` seeds ``G_T`` (value of the state after the last step;
    0 for terminal episodes).
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    rewards = np.asarray(rewards, dtype=np.float64)
    out = np.empty_like(rewards)
    g = float(bootstrap)
    for t in range(rewards.shape[0] - 1, -1, -1):
        g = rewards[t] + gamma * g
        out[t] = g
    return out


def n_step_returns(
    rewards: np.ndarray, values: np.ndarray, gamma: float, n: int, last_value: float = 0.0
) -> np.ndarray:
    """n-step TD targets ``r_t + ... + gamma^n V(s_{t+n})``.

    ``values`` are state values aligned with ``rewards``; beyond the end
    of the episode the bootstrap uses ``last_value`` once, then 0.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    T = rewards.shape[0]
    if values.shape[0] != T:
        raise ValueError("values must align with rewards")
    ext_values = np.concatenate([values, [last_value]])
    out = np.zeros(T)
    for t in range(T):
        end = min(t + n, T)
        discounts = gamma ** np.arange(end - t)
        out[t] = float(np.sum(discounts * rewards[t:end]))
        # Bootstrap: an in-episode cut (end < T) uses the stored value of
        # s_{t+n}; a window reaching the episode boundary (end == T) uses
        # ``last_value`` — 0 for terminal episodes, V(s_T) for truncated
        # ones. ``ext_values[end]`` encodes both cases.
        out[t] += (gamma ** (end - t)) * ext_values[end]
    return out


def gae_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    gamma: float,
    lam: float,
    last_value: float = 0.0,
) -> np.ndarray:
    """Generalized Advantage Estimation (Schulman et al., 2016).

    ``A_t = delta_t + (gamma*lam) A_{t+1}`` with
    ``delta_t = r_t + gamma V_{t+1} - V_t``.
    """
    if not 0.0 <= gamma <= 1.0 or not 0.0 <= lam <= 1.0:
        raise ValueError("gamma and lam must be in [0, 1]")
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    T = rewards.shape[0]
    if values.shape[0] != T:
        raise ValueError("values must align with rewards")
    next_values = np.concatenate([values[1:], [last_value]])
    deltas = rewards + gamma * next_values - values
    adv = np.empty(T)
    acc = 0.0
    gl = gamma * lam
    for t in range(T - 1, -1, -1):
        acc = deltas[t] + gl * acc
        adv[t] = acc
    return adv


def normalize_advantages(adv: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Zero-mean unit-variance advantages (the standard PG variance fix)."""
    adv = np.asarray(adv, dtype=np.float64)
    std = adv.std()
    if std < eps:
        return adv - adv.mean()
    return (adv - adv.mean()) / (std + eps)
