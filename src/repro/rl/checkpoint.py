"""Whole-agent checkpointing: weights + config + normalizer state.

:mod:`repro.nn.serialize` round-trips a single network; this module
round-trips a whole *agent* — every network it owns (policy, value
function, Q-network and its target), the DQN schedule counters that
drive epsilon/target-sync, an attached observation normalizer
(:class:`~repro.rl.running_norm.RunningMeanStd` under ``agent.obs_norm``,
when present), and the algorithm config — into one ``.npz`` file.

The config travels with the weights so a checkpoint can never be loaded
into a structurally different agent: :func:`load_agent` refuses on any
mismatch of agent class or config instead of silently reinterpreting
arrays. Optimizer moments are deliberately *not* part of the format —
a checkpoint captures the decision function (and the annealing state
that shapes future exploration), not a mid-gradient-step snapshot.

All four agents of :mod:`repro.core.training`'s registry (reinforce,
a2c, ppo, dqn) round-trip exactly: float64 arrays are stored verbatim,
so a reloaded agent's greedy decisions are bit-identical to the saved
one's.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List

import numpy as np

from repro.rl.running_norm import RunningMeanStd

__all__ = ["save_agent", "load_agent"]

#: Bump on any incompatible change to the checkpoint layout.
_SCHEMA_VERSION = 1

#: Attribute name -> checkpoint net label, in a fixed order. Each listed
#: attribute (when present and non-None) must expose ``params()``.
_NET_ATTRS = ("policy", "value_fn", "q_net", "target_net")

#: DQN schedule counters; restored so epsilon annealing and target-sync
#: cadence continue where the saved agent left off.
_COUNTER_ATTRS = ("total_env_steps", "total_grad_steps")


def _nets(agent) -> Dict[str, object]:
    """The agent's parameterized networks, keyed by attribute name."""
    nets: Dict[str, object] = {}
    for attr in _NET_ATTRS:
        net = getattr(agent, attr, None)
        if net is not None:
            nets[attr] = net
    if not nets:
        raise ValueError(
            f"{type(agent).__name__} exposes none of {_NET_ATTRS}; "
            "nothing to checkpoint")
    return nets


def _config_json(config) -> str:
    """Canonical JSON of an algorithm config dataclass (order-stable)."""
    if not dataclasses.is_dataclass(config):
        raise ValueError(
            f"agent config must be a dataclass, got {type(config).__name__}")
    return json.dumps(dataclasses.asdict(config), sort_keys=True)


def save_agent(agent, path: str) -> None:
    """Write ``agent`` (any of the four algorithms) to an ``.npz`` file.

    The file holds every network's parameter arrays (``<net>_<i>`` in
    layer order), the DQN counters, the ``obs_norm`` normalizer state
    when the agent carries one, and a ``meta`` JSON record naming the
    agent class and its full config.
    """
    nets = _nets(agent)
    arrays: Dict[str, np.ndarray] = {}
    net_sizes: Dict[str, int] = {}
    for name, net in nets.items():
        params: List[np.ndarray] = net.params()
        net_sizes[name] = len(params)
        for i, p in enumerate(params):
            arrays[f"{name}_{i}"] = p
    counters = {attr: int(getattr(agent, attr))
                for attr in _COUNTER_ATTRS if hasattr(agent, attr)}
    norm = getattr(agent, "obs_norm", None)
    norm_count = None
    if norm is not None:
        state = norm.state_dict()
        arrays["obs_norm_mean"] = state["mean"]
        arrays["obs_norm_var"] = state["var"]
        norm_count = state["count"]
    meta = {
        "schema": _SCHEMA_VERSION,
        "agent": type(agent).__name__,
        "config_class": type(agent.config).__name__,
        "config": json.loads(_config_json(agent.config)),
        "nets": net_sizes,
        "counters": counters,
        "obs_norm_count": norm_count,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # Write through a file object: np.savez appends ".npz" to bare
    # string paths, which would break the save-path == load-path
    # symmetry for suffixless checkpoint names.
    with open(path, "wb") as fh:
        np.savez(fh, meta=np.array(json.dumps(meta, sort_keys=True)), **arrays)


def load_agent(agent, path: str) -> None:
    """Restore a checkpoint written by :func:`save_agent` into ``agent``.

    ``agent`` must be a freshly constructed instance of the same class
    with the same config (construct it with any RNG — every loaded array
    overwrites the random init). Raises ``ValueError`` on any structural
    mismatch: wrong agent class, different config, or a parameter count /
    shape that does not line up.
    """
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(data["meta"].item())
        if meta.get("schema") != _SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint schema {meta.get('schema')!r} != "
                f"{_SCHEMA_VERSION} (re-save with this version)")
        if meta["agent"] != type(agent).__name__:
            raise ValueError(
                f"checkpoint holds a {meta['agent']}, not a "
                f"{type(agent).__name__}")
        want = json.dumps(meta["config"], sort_keys=True)
        have = _config_json(agent.config)
        if want != have:
            raise ValueError(
                "checkpoint config does not match the agent's: "
                f"saved {want} vs constructed {have}")
        nets = _nets(agent)
        if set(meta["nets"]) != set(nets):
            raise ValueError(
                f"checkpoint nets {sorted(meta['nets'])} != agent nets "
                f"{sorted(nets)}")
        for name, net in nets.items():
            params = net.params()
            if meta["nets"][name] != len(params):
                raise ValueError(
                    f"{name}: checkpoint has {meta['nets'][name]} arrays, "
                    f"agent has {len(params)}")
            for i, p in enumerate(params):
                loaded = data[f"{name}_{i}"]
                if loaded.shape != p.shape:
                    raise ValueError(
                        f"{name}_{i}: shape {loaded.shape} vs {p.shape}")
                p[...] = loaded
        for attr, value in meta["counters"].items():
            setattr(agent, attr, int(value))
        if meta["obs_norm_count"] is not None:
            norm = getattr(agent, "obs_norm", None)
            if norm is None:
                norm = RunningMeanStd(data["obs_norm_mean"].shape)
                agent.obs_norm = norm
            norm.load_state({"mean": data["obs_norm_mean"],
                             "var": data["obs_norm_var"],
                             "count": meta["obs_norm_count"]})
