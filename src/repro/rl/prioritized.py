"""Proportional prioritized experience replay (Schaul et al., 2016).

Transitions are sampled with probability proportional to
``(|td_error| + eps) ** alpha`` and the induced bias is corrected by
importance-sampling weights annealed by ``beta``. Sampling uses a
vectorized cumulative-sum search over the priority array — O(n) per
batch, which at the buffer sizes used here (<= 10^5) is faster in NumPy
than a Python-object sum-tree and has no per-transition allocation.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.rl.schedules import LinearSchedule, Schedule

__all__ = ["PrioritizedReplayBuffer"]


class PrioritizedReplayBuffer:
    """Fixed-capacity proportional-PER over preallocated NumPy storage.

    Same transition layout as :class:`~repro.rl.replay.ReplayBuffer`
    (masked next-state support for the scheduler MDP), plus per-slot
    priorities. New transitions enter at the current maximum priority so
    everything is replayed at least once.
    """

    def __init__(
        self,
        capacity: int,
        obs_dim: int,
        n_actions: int,
        alpha: float = 0.6,
        beta: Optional[Schedule] = None,
        eps: float = 1e-3,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if obs_dim <= 0 or n_actions <= 0:
            raise ValueError("obs_dim and n_actions must be positive")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.capacity = capacity
        self.alpha = alpha
        self.eps = eps
        self.beta = beta if beta is not None else LinearSchedule(0.4, 1.0, 100_000)
        self.obs = np.zeros((capacity, obs_dim))
        self.next_obs = np.zeros((capacity, obs_dim))
        self.actions = np.zeros(capacity, dtype=np.intp)
        self.rewards = np.zeros(capacity)
        self.dones = np.zeros(capacity, dtype=bool)
        self.next_masks = np.ones((capacity, n_actions), dtype=bool)
        self.priorities = np.zeros(capacity)
        self._max_priority = 1.0
        self._size = 0
        self._head = 0
        self._samples_drawn = 0

    def __len__(self) -> int:
        return self._size

    def add(
        self,
        obs: np.ndarray,
        action: int,
        reward: float,
        next_obs: np.ndarray,
        done: bool,
        next_mask: np.ndarray,
    ) -> None:
        i = self._head
        self.obs[i] = obs
        self.actions[i] = action
        self.rewards[i] = reward
        self.next_obs[i] = next_obs
        self.dones[i] = done
        self.next_masks[i] = next_mask
        self.priorities[i] = self._max_priority
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Priority-proportional minibatch with IS weights.

        The returned dict adds ``weights`` (max-normalized, in (0, 1])
        and ``indices`` (for :meth:`update_priorities`) to the usual
        transition arrays.
        """
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        probs = self.priorities[: self._size] ** self.alpha
        total = probs.sum()
        if total <= 0:  # pragma: no cover - priorities are always > 0
            probs = np.full(self._size, 1.0 / self._size)
        else:
            probs = probs / total
        # With-replacement draws are standard for proportional PER.
        idx = rng.choice(self._size, size=batch_size, p=probs, replace=True)
        beta = self.beta(self._samples_drawn)
        self._samples_drawn += batch_size
        weights = (self._size * probs[idx]) ** (-beta)
        weights = weights / weights.max()
        return {
            "obs": self.obs[idx],
            "actions": self.actions[idx],
            "rewards": self.rewards[idx],
            "next_obs": self.next_obs[idx],
            "dones": self.dones[idx],
            "next_masks": self.next_masks[idx],
            "weights": weights,
            "indices": idx,
        }

    def update_priorities(self, indices: np.ndarray, td_errors: np.ndarray) -> None:
        """Refresh priorities after a gradient step (``|delta| + eps``)."""
        if len(indices) != len(td_errors):
            raise ValueError("indices and td_errors must align")
        new = np.abs(np.asarray(td_errors, dtype=float)) + self.eps
        self.priorities[np.asarray(indices, dtype=np.intp)] = new
        # Recompute the insert ceiling from the *live* array rather than
        # ratcheting it up monotonically: a single early TD-error spike
        # must not dominate every future insert once the spiked slot has
        # been re-scored (or overwritten) at a lower priority.
        self._max_priority = float(self.priorities[: self._size].max())
