"""Reinforcement-learning substrate.

Gym-like environment protocol, action/observation spaces, return/advantage
estimation, masked categorical policies over the from-scratch NN stack,
and four agents: REINFORCE (with learned baseline, as DeepRM), A2C, PPO
(clipped), and DQN (replay + target network) — the algorithm family the
paper's evaluation compares (experiment E12).
"""

from repro.rl.spaces import Box, Discrete
from repro.rl.env import Env
from repro.rl.returns import (
    discounted_returns,
    gae_advantages,
    normalize_advantages,
    n_step_returns,
)
from repro.rl.running_norm import RunningMeanStd
from repro.rl.policies import CategoricalPolicy, ValueFunction
from repro.rl.rollout import RolloutBuffer, Transition, collect_vec_episodes
from repro.rl.vec_env import VecEnv
from repro.rl.replay import ReplayBuffer
from repro.rl.prioritized import PrioritizedReplayBuffer
from repro.rl.schedules import (
    ConstantSchedule,
    CosineSchedule,
    ExponentialSchedule,
    LinearSchedule,
    PiecewiseSchedule,
    Schedule,
)
from repro.rl.checkpoint import load_agent, save_agent
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.rl.a2c import A2CAgent, A2CConfig
from repro.rl.ppo import PPOAgent, PPOConfig
from repro.rl.dqn import DQNAgent, DQNConfig, DuelingQNet

__all__ = [
    "Box", "Discrete", "Env",
    "discounted_returns", "n_step_returns", "gae_advantages",
    "normalize_advantages", "RunningMeanStd",
    "CategoricalPolicy", "ValueFunction",
    "RolloutBuffer", "Transition", "collect_vec_episodes", "VecEnv",
    "ReplayBuffer", "PrioritizedReplayBuffer",
    "Schedule", "ConstantSchedule", "LinearSchedule", "ExponentialSchedule",
    "CosineSchedule", "PiecewiseSchedule",
    "ReinforceAgent", "ReinforceConfig",
    "A2CAgent", "A2CConfig",
    "PPOAgent", "PPOConfig",
    "DQNAgent", "DQNConfig", "DuelingQNet",
    "save_agent", "load_agent",
]
