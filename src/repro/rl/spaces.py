"""Action/observation spaces (minimal Gym-compatible subset)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["Discrete", "Box"]


class Discrete:
    """Finite action set ``{0, ..., n-1}``."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n

    def contains(self, x) -> bool:
        try:
            xi = int(x)
        except (TypeError, ValueError):
            return False
        return 0 <= xi < self.n and float(x) == xi

    def sample(self, rng: np.random.Generator, mask: Optional[np.ndarray] = None) -> int:
        """Uniform sample, optionally restricted to ``mask``-valid actions."""
        if mask is None:
            return int(rng.integers(self.n))
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError(f"mask shape {mask.shape} != ({self.n},)")
        valid = np.flatnonzero(mask)
        if valid.size == 0:
            raise ValueError("no valid action under mask")
        return int(rng.choice(valid))

    def __repr__(self) -> str:
        return f"Discrete({self.n})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Discrete) and other.n == self.n


class Box:
    """Real-valued observation space with elementwise bounds."""

    def __init__(self, low: float, high: float, shape: Tuple[int, ...]) -> None:
        if high <= low:
            raise ValueError("high must exceed low")
        if any(s <= 0 for s in shape):
            raise ValueError("shape entries must be positive")
        self.low = float(low)
        self.high = float(high)
        self.shape = tuple(shape)

    def contains(self, x) -> bool:
        arr = np.asarray(x)
        return (
            arr.shape == self.shape
            and bool(np.all(arr >= self.low - 1e-9))
            and bool(np.all(arr <= self.high + 1e-9))
        )

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=self.shape)

    def __repr__(self) -> str:
        return f"Box({self.low}, {self.high}, {self.shape})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Box)
            and other.low == self.low
            and other.high == self.high
            and other.shape == self.shape
        )
