"""Running mean/variance normalizer (Welford/Chan parallel update).

Observation features in the scheduler state span very different scales
(slack in ticks vs. normalized occupancy); online normalization keeps
the policy network conditioning stable across load regimes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["RunningMeanStd"]


class RunningMeanStd:
    """Tracks elementwise mean and variance of streaming batches."""

    def __init__(self, shape: Tuple[int, ...], eps: float = 1e-4) -> None:
        self.mean = np.zeros(shape)
        self.var = np.ones(shape)
        self.count = eps

    def update(self, batch: np.ndarray) -> None:
        """Fold one batch (leading axis = samples) into the statistics."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        batch_count = batch.shape[0]
        # Chan et al. parallel-variance combination.
        delta = batch_mean - self.mean
        total = self.count + batch_count
        new_mean = self.mean + delta * batch_count / total
        m_a = self.var * self.count
        m_b = batch_var * batch_count
        m2 = m_a + m_b + delta * delta * self.count * batch_count / total
        self.mean = new_mean
        self.var = m2 / total
        self.count = total

    def normalize(self, x: np.ndarray, clip: float = 10.0) -> np.ndarray:
        """Standardize ``x`` with the running stats, clipped to ``±clip``."""
        z = (np.asarray(x, dtype=np.float64) - self.mean) / np.sqrt(self.var + 1e-8)
        return np.clip(z, -clip, clip)

    def state_dict(self) -> dict:
        """The full normalizer state as plain arrays (checkpointable)."""
        return {"mean": np.array(self.mean, dtype=np.float64, copy=True),
                "var": np.array(self.var, dtype=np.float64, copy=True),
                "count": float(self.count)}

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict` (exact round-trip)."""
        mean = np.asarray(state["mean"], dtype=np.float64)
        var = np.asarray(state["var"], dtype=np.float64)
        if mean.shape != np.shape(self.mean) or var.shape != np.shape(self.var):
            raise ValueError(
                f"normalizer shape mismatch: checkpoint {mean.shape}, "
                f"instance {np.shape(self.mean)}")
        self.mean = mean.copy()
        self.var = var.copy()
        self.count = float(state["count"])
