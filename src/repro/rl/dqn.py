"""Deep Q-Network with experience replay and a target network.

Included as the value-based comparator in experiment E12 — the literature
(and our reproduction) finds value-based methods weaker than policy
gradient on large masked composite action spaces, and E12 verifies that
shape holds here too. The Rainbow-lineage extensions (double targets,
dueling heads, prioritized replay) are individually switchable so their
contribution can be ablated.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Dense, Layer, Sequential, mlp
from repro.nn.losses import HuberLoss
from repro.nn.optim import Adam
from repro.nn.utils import clip_gradients_
from repro.rl.env import Env
from repro.rl.policies import MASK_VALUE
from repro.rl.prioritized import PrioritizedReplayBuffer
from repro.rl.replay import ReplayBuffer
from repro.rl.schedules import LinearSchedule

__all__ = ["DQNConfig", "DQNAgent", "DuelingQNet"]


@dataclass(frozen=True)
class DQNConfig:
    """Hyperparameters for :class:`DQNAgent`."""

    gamma: float = 0.99
    lr: float = 5e-4
    batch_size: int = 64
    buffer_capacity: int = 50_000
    target_update_every: int = 250      # gradient steps between target syncs
    train_every: int = 1                # env steps between gradient steps
    warmup_steps: int = 500
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 5_000
    double_dqn: bool = True
    dueling: bool = False
    prioritized: bool = False
    per_alpha: float = 0.6
    per_beta_start: float = 0.4
    per_beta_steps: int = 100_000
    max_grad_norm: float = 10.0
    hidden: Tuple[int, ...] = (64, 64)


class DuelingQNet(Layer):
    """Dueling architecture: shared trunk, value + advantage streams.

    ``Q(s, a) = V(s) + A(s, a) - mean_a A(s, a)`` (the average-combined
    form of Wang et al., 2016, which is the stable variant). Implements
    the :class:`~repro.nn.layers.Layer` protocol so the optimizer and
    (de)serialization treat it like any Sequential.
    """

    def __init__(self, obs_dim: int, n_actions: int, hidden: Tuple[int, ...],
                 rng: np.random.Generator) -> None:
        if not hidden:
            raise ValueError("dueling net needs at least one hidden layer")
        self.trunk = mlp([obs_dim, *hidden], rng, activation="relu",
                         out_activation="relu")
        self.value_head = Dense(hidden[-1], 1, rng)
        self.adv_head = Dense(hidden[-1], n_actions, rng)
        self.n_actions = n_actions

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.trunk.forward(x)
        v = self.value_head.forward(h)                     # (B, 1)
        a = self.adv_head.forward(h)                       # (B, A)
        return v + a - a.mean(axis=1, keepdims=True)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # dQ/dA_j = grad_j - mean_k grad_k ; dQ/dV = sum_j grad_j
        da = grad_out - grad_out.mean(axis=1, keepdims=True)
        dv = grad_out.sum(axis=1, keepdims=True)
        dh = self.adv_head.backward(da) + self.value_head.backward(dv)
        return self.trunk.backward(dh)

    def params(self) -> List[np.ndarray]:
        return self.trunk.params() + self.value_head.params() + self.adv_head.params()

    def grads(self) -> List[np.ndarray]:
        return self.trunk.grads() + self.value_head.grads() + self.adv_head.grads()

    def train(self) -> None:
        self.trunk.train()

    def eval(self) -> None:
        self.trunk.eval()


class DQNAgent:
    """(Double) DQN over masked discrete actions."""

    def __init__(
        self,
        obs_dim: int,
        n_actions: int,
        config: DQNConfig,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.rng = rng
        self.n_actions = n_actions
        if config.dueling:
            self.q_net: Layer = DuelingQNet(obs_dim, n_actions, config.hidden, rng)
        else:
            self.q_net = mlp([obs_dim, *config.hidden, n_actions], rng,
                             activation="relu")
        self.target_net: Layer = copy.deepcopy(self.q_net)
        self.optimizer = Adam(self.q_net.params(), self.q_net.grads(), lr=config.lr)
        self.loss_fn = HuberLoss()
        if config.prioritized:
            self.buffer = PrioritizedReplayBuffer(
                config.buffer_capacity, obs_dim, n_actions,
                alpha=config.per_alpha,
                beta=LinearSchedule(config.per_beta_start, 1.0,
                                    config.per_beta_steps),
            )
        else:
            self.buffer = ReplayBuffer(config.buffer_capacity, obs_dim, n_actions)
        self.total_env_steps = 0
        self.total_grad_steps = 0

    # --- acting -----------------------------------------------------------------
    def epsilon(self) -> float:
        """Linearly-annealed exploration rate."""
        cfg = self.config
        frac = min(1.0, self.total_env_steps / max(cfg.epsilon_decay_steps, 1))
        return cfg.epsilon_start + frac * (cfg.epsilon_end - cfg.epsilon_start)

    def q_values(self, obs: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Masked Q-values for one observation."""
        q = self.q_net.forward(np.atleast_2d(obs))[0]
        if mask is not None:
            q = np.where(mask, q, MASK_VALUE)
        return q

    def act(self, obs: np.ndarray, mask: Optional[np.ndarray] = None,
            greedy: bool = False) -> Tuple[int, float]:
        """Epsilon-greedy action; returns ``(action, 0.0)`` (no log-prob)."""
        if not greedy and self.rng.random() < self.epsilon():
            if mask is None:
                return int(self.rng.integers(self.n_actions)), 0.0
            valid = np.flatnonzero(mask)
            return int(self.rng.choice(valid)), 0.0
        return int(np.argmax(self.q_values(obs, mask))), 0.0

    def act_batch(self, obs: np.ndarray, masks: np.ndarray,
                  greedy: bool = False) -> np.ndarray:
        """Epsilon-greedy actions for a batch of observations.

        One Q-network forward serves the whole batch; exploration is
        drawn per row. Returns an ``(B,)`` action array.
        """
        q = self.q_net.forward(np.atleast_2d(obs))
        q = np.where(masks, q, MASK_VALUE)
        actions = np.argmax(q, axis=1)
        if not greedy:
            explore = self.rng.random(actions.shape[0]) < self.epsilon()
            for i in np.flatnonzero(explore):
                actions[i] = int(self.rng.choice(np.flatnonzero(masks[i])))
        return actions.astype(np.intp)

    # --- learning ---------------------------------------------------------------
    def _sync_target(self) -> None:
        for tp, p in zip(self.target_net.params(), self.q_net.params()):
            tp[...] = p

    def learn_step(self) -> Optional[float]:
        """One gradient step from replay; returns loss (None if warming up)."""
        cfg = self.config
        if len(self.buffer) < max(cfg.batch_size, cfg.warmup_steps):
            return None
        batch = self.buffer.sample(cfg.batch_size, self.rng)
        next_q_target = self.target_net.forward(batch["next_obs"])
        next_q_target = np.where(batch["next_masks"], next_q_target, MASK_VALUE)
        if cfg.double_dqn:
            next_q_online = self.q_net.forward(batch["next_obs"])
            next_q_online = np.where(batch["next_masks"], next_q_online, MASK_VALUE)
            best = np.argmax(next_q_online, axis=1)
            next_values = next_q_target[np.arange(cfg.batch_size), best]
        else:
            next_values = next_q_target.max(axis=1)
        targets = batch["rewards"] + cfg.gamma * next_values * (~batch["dones"])

        q_all = self.q_net.forward(batch["obs"])
        idx = np.arange(cfg.batch_size)
        pred = q_all[idx, batch["actions"]].reshape(-1, 1)
        loss, grad_pred = self.loss_fn(pred, targets.reshape(-1, 1))
        weights = batch.get("weights")
        if weights is not None:
            # Importance-sampling correction for prioritized replay; the
            # fresh TD errors become the next priorities.
            grad_pred = grad_pred * weights.reshape(-1, 1)
            self.buffer.update_priorities(batch["indices"],
                                          (pred - targets.reshape(-1, 1)).ravel())
        dq = np.zeros_like(q_all)
        dq[idx, batch["actions"]] = grad_pred.ravel()
        self.q_net.zero_grad()
        self.q_net.backward(dq)
        clip_gradients_(self.q_net.grads(), cfg.max_grad_norm)
        self.optimizer.step()

        self.total_grad_steps += 1
        if self.total_grad_steps % cfg.target_update_every == 0:
            self._sync_target()
        return loss

    def train(
        self,
        env: Env,
        iterations: int,
        episodes_per_iter: int = 4,
        max_steps: int = 1000,
    ) -> List[Dict[str, float]]:
        """Env-interleaved training loop matching the on-policy agents' API.

        ``env`` may also be a :class:`~repro.rl.vec_env.VecEnv`: the same
        number of episodes per iteration is then gathered by stepping the
        batch in lockstep with batched action selection, pushing every
        transition into replay.
        """
        from repro.rl.vec_env import VecEnv

        if isinstance(env, VecEnv):
            return self._train_vec(env, iterations, episodes_per_iter, max_steps)
        history: List[Dict[str, float]] = []
        for _ in range(iterations):
            ep_returns = []
            losses = []
            for _ in range(episodes_per_iter):
                obs = env.reset()
                total = 0.0
                for _ in range(max_steps):
                    mask = env.action_mask()
                    action, _ = self.act(obs, mask=mask)
                    next_obs, reward, done, _ = env.step(action)
                    next_mask = (
                        env.action_mask() if not done
                        else np.ones(self.n_actions, dtype=bool)
                    )
                    self.buffer.add(obs, action, reward, next_obs, done, next_mask)
                    self.total_env_steps += 1
                    if self.total_env_steps % self.config.train_every == 0:
                        loss = self.learn_step()
                        if loss is not None:
                            losses.append(loss)
                    total += reward
                    obs = next_obs
                    if done:
                        break
                ep_returns.append(total)
            history.append({
                "episode_return": float(np.mean(ep_returns)),
                "loss": float(np.mean(losses)) if losses else 0.0,
                "epsilon": self.epsilon(),
            })
        return history

    def _train_vec(self, vec_env, iterations: int, episodes_per_iter: int,
                   max_steps: int) -> List[Dict[str, float]]:
        """Lockstep-batched variant of the training loop."""
        num = vec_env.num_envs
        ones = np.ones(self.n_actions, dtype=bool)
        history: List[Dict[str, float]] = []
        for _ in range(iterations):
            ep_returns: List[float] = []
            losses: List[float] = []
            obs = vec_env.reset()
            masks = vec_env.action_masks()
            totals = np.zeros(num)
            steps = np.zeros(num, dtype=int)
            while len(ep_returns) < episodes_per_iter:
                actions = self.act_batch(obs, masks)
                next_obs, rewards, dones, _ = vec_env.step(actions)
                next_masks = vec_env.action_masks()
                truncated = False
                for i in range(num):
                    # Terminal next-masks are unused by the target (the
                    # done flag zeroes the bootstrap), mirror the serial
                    # loop's all-ones placeholder.
                    next_mask = ones if dones[i] else next_masks[i]
                    self.buffer.add(obs[i], int(actions[i]), float(rewards[i]),
                                    next_obs[i], bool(dones[i]), next_mask)
                    self.total_env_steps += 1
                    if self.total_env_steps % self.config.train_every == 0:
                        loss = self.learn_step()
                        if loss is not None:
                            losses.append(loss)
                    totals[i] += rewards[i]
                    steps[i] += 1
                    if dones[i] or steps[i] >= max_steps:
                        ep_returns.append(float(totals[i]))
                        totals[i] = 0.0
                        steps[i] = 0
                        if not dones[i]:  # truncation: force a fresh episode
                            next_obs[i] = vec_env.reset_env(i)
                            truncated = True
                if truncated:
                    next_masks = vec_env.action_masks()
                obs, masks = next_obs, next_masks
            history.append({
                "episode_return": float(np.mean(ep_returns[:episodes_per_iter])),
                "loss": float(np.mean(losses)) if losses else 0.0,
                "epsilon": self.epsilon(),
            })
        return history
