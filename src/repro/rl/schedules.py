"""Scalar hyperparameter schedules (epsilon, entropy coefficient, LR).

Every schedule maps a non-negative integer step to a float and is a
plain callable, so agents can take ``Schedule`` objects wherever they
currently take constants. All schedules are immutable and cheap; no
state lives in the schedule itself (the *step counter* is the agent's).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "Schedule",
    "ConstantSchedule",
    "LinearSchedule",
    "ExponentialSchedule",
    "CosineSchedule",
    "PiecewiseSchedule",
]


class Schedule:
    """Protocol: ``value(step) -> float``; also callable."""

    def value(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError("step must be non-negative")
        return self.value(step)


@dataclass(frozen=True)
class ConstantSchedule(Schedule):
    """Always ``v``."""

    v: float

    def value(self, step: int) -> float:
        return self.v


@dataclass(frozen=True)
class LinearSchedule(Schedule):
    """Linear interpolation ``start -> end`` over ``steps``, then flat."""

    start: float
    end: float
    steps: int

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ValueError("steps must be positive")

    def value(self, step: int) -> float:
        frac = min(1.0, step / self.steps)
        return self.start + frac * (self.end - self.start)


@dataclass(frozen=True)
class ExponentialSchedule(Schedule):
    """Geometric decay ``start * decay**step`` floored at ``end``."""

    start: float
    end: float
    decay: float

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if self.end > self.start:
            raise ValueError("end must not exceed start for a decay")

    def value(self, step: int) -> float:
        return max(self.end, self.start * self.decay ** step)


@dataclass(frozen=True)
class CosineSchedule(Schedule):
    """Half-cosine anneal ``start -> end`` over ``steps``, then flat.

    The warm-restart-free cosine used for learning rates: slow start,
    fast middle, slow landing.
    """

    start: float
    end: float
    steps: int

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ValueError("steps must be positive")

    def value(self, step: int) -> float:
        frac = min(1.0, step / self.steps)
        return self.end + 0.5 * (self.start - self.end) * (1.0 + math.cos(math.pi * frac))


class PiecewiseSchedule(Schedule):
    """Linear interpolation through ``(step, value)`` breakpoints.

    Before the first breakpoint the first value holds; after the last,
    the last value holds.
    """

    def __init__(self, points: Sequence[Tuple[int, float]]) -> None:
        if not points:
            raise ValueError("need at least one breakpoint")
        steps = [s for s, _ in points]
        if steps != sorted(steps) or len(set(steps)) != len(steps):
            raise ValueError("breakpoint steps must be strictly increasing")
        self.points = [(int(s), float(v)) for s, v in points]

    def value(self, step: int) -> float:
        pts = self.points
        if step <= pts[0][0]:
            return pts[0][1]
        for (s0, v0), (s1, v1) in zip(pts, pts[1:]):
            if step <= s1:
                frac = (step - s0) / (s1 - s0)
                return v0 + frac * (v1 - v0)
        return pts[-1][1]
