"""Vectorized environment: N scheduler MDPs stepped as one batch.

``VecEnv`` runs ``B`` :class:`~repro.core.scheduler_env.SchedulerEnv`
instances in lockstep and exposes batched ``reset`` / ``step`` /
``action_masks`` returning stacked arrays. The throughput win over ``B``
serial episodes comes from batching everything that is batchable:

* **one** policy-network forward (and one RNG draw) serves all ``B``
  action selections — see :meth:`CategoricalPolicy.act_batch`;
* observations are encoded through
  :meth:`StateEncoder.encode_batch` and masks through
  :meth:`SchedulingActionSpace.mask_batch`, amortizing the fixed numpy
  cost (allocation, clipping) across the batch;
* the ``(queue, running)`` slot views each environment needs for *both*
  its observation and its mask are computed once per state and shared;
* value estimates for GAE are deferred and computed in one batched
  forward per episode instead of one tiny forward per step — see
  :func:`repro.rl.rollout.collect_vec_episodes`.

Environments auto-reset when an episode ends: the returned observation
for a finished slot is the first observation of its next episode, and the
final metrics report is delivered through ``infos[i]["metrics"]``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

import numpy as np

from repro.core.views import slot_views

if TYPE_CHECKING:  # pragma: no cover — avoids a circular import at runtime
    from repro.core.scheduler_env import SchedulerEnv

__all__ = ["VecEnv"]


class VecEnv:
    """Batched lockstep wrapper over homogeneous scheduler environments."""

    def __init__(self, envs: Sequence["SchedulerEnv"]) -> None:
        if not envs:
            raise ValueError("VecEnv needs at least one environment")
        dims = {(e.encoder.obs_dim, e.actions.n) for e in envs}
        if len(dims) != 1:
            raise ValueError("all environments must share observation/action spaces")
        self.envs: List["SchedulerEnv"] = list(envs)
        self.encoder = envs[0].encoder
        self.actions = envs[0].actions
        self.observation_space = envs[0].observation_space
        self.action_space = envs[0].action_space
        self._views: List[Optional[tuple]] = [None] * len(envs)

    @classmethod
    def from_env(cls, env: "SchedulerEnv", num_envs: int,
                 base_seed: int = 0) -> "VecEnv":
        """``num_envs`` sibling environments of ``env`` with spread seeds.

        The episode factory is shared (sampling-mode factories are
        stateless; replay-mode factories deal traces round-robin across
        the batch), each sibling getting an independent RNG stream.
        Siblings are built with :meth:`SchedulerEnv.clone`, so they carry
        the prototype's *complete* configuration — including any
        environment option added after this method was written.
        """
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        return cls([env.clone(seed=base_seed + i) for i in range(num_envs)])

    # --- batched API ---------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return len(self.envs)

    def reset(self, seed: Optional[int] = None) -> np.ndarray:
        """Reset every environment; returns stacked observations ``(B, D)``."""
        for i, env in enumerate(self.envs):
            env.reset_state(None if seed is None else seed + i)
            self._views[i] = None
        return self._encode_all()

    def reset_env(self, index: int) -> np.ndarray:
        """Reset one environment (episode truncation); returns its obs."""
        self.envs[index].reset_state()
        self._views[index] = None
        sim = self.envs[index].sim
        view = self._view_for(index)
        return self.encoder.encode_batch([sim], views=[view])[0]

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        """Apply one action per environment.

        Returns ``(obs (B, D), rewards (B,), dones (B,), infos)``. Done
        environments are auto-reset; their returned observation is the
        fresh episode's first observation and the terminal metrics stay
        in ``infos[i]["metrics"]``.
        """
        rewards = np.zeros(self.num_envs)
        dones = np.zeros(self.num_envs, dtype=bool)
        infos: List[Dict[str, Any]] = []
        for i, (env, action) in enumerate(zip(self.envs, actions)):
            reward, done, info = env.step_dynamics(int(action), views=self._views[i])
            rewards[i] = reward
            dones[i] = done
            infos.append(info)
            if done:
                env.reset_state()
            self._views[i] = None
        return self._encode_all(), rewards, dones, infos

    def action_masks(self) -> np.ndarray:
        """Stacked validity masks ``(B, n)`` for the current states."""
        views = [self._view_for(i) for i in range(self.num_envs)]
        return self.actions.mask_batch([e.sim for e in self.envs], views=views)

    # --- internals ------------------------------------------------------------
    def _view_for(self, i: int) -> tuple:
        """The (queue, running) slot views of env ``i``, computed once per
        state and shared between observation encoding and action masking.
        Both views sort via the SoA deadline/slack columns when the
        simulation carries state tables, so this is a lexsort per state,
        not a per-job Python key function."""
        view = self._views[i]
        if view is None:
            cfg = self.envs[i].config
            view = slot_views(self.envs[i].sim, cfg.queue_slots, cfg.running_slots)
            self._views[i] = view
        return view

    def _encode_all(self) -> np.ndarray:
        views = [self._view_for(i) for i in range(self.num_envs)]
        return self.encoder.encode_batch([e.sim for e in self.envs], views=views)
