"""On-policy rollout storage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["Transition", "RolloutBuffer"]


@dataclass(frozen=True)
class Transition:
    """One environment step as stored during a rollout."""

    obs: np.ndarray
    action: int
    reward: float
    done: bool
    log_prob: float
    value: float = 0.0
    mask: Optional[np.ndarray] = None


class RolloutBuffer:
    """Accumulates transitions for one or more episodes, then batches them.

    ``episodes()`` yields per-episode slices (REINFORCE needs full-episode
    returns); ``batch()`` concatenates everything (A2C/PPO operate on the
    flat batch with per-step dones).
    """

    def __init__(self) -> None:
        self._transitions: List[Transition] = []
        self._episode_bounds: List[int] = [0]

    def add(self, transition: Transition) -> None:
        self._transitions.append(transition)
        if transition.done:
            self._episode_bounds.append(len(self._transitions))

    def end_episode(self) -> None:
        """Force an episode boundary (for truncated, non-done episodes)."""
        if self._episode_bounds[-1] != len(self._transitions):
            self._episode_bounds.append(len(self._transitions))

    def __len__(self) -> int:
        return len(self._transitions)

    @property
    def num_episodes(self) -> int:
        return len(self._episode_bounds) - 1

    def episodes(self) -> List[List[Transition]]:
        """Per-episode transition lists (trailing partial episode included)."""
        bounds = list(self._episode_bounds)
        if bounds[-1] != len(self._transitions):
            bounds.append(len(self._transitions))
        return [
            self._transitions[bounds[i] : bounds[i + 1]]
            for i in range(len(bounds) - 1)
            if bounds[i + 1] > bounds[i]
        ]

    def batch(self) -> Dict[str, np.ndarray]:
        """Flat arrays over every stored transition."""
        if not self._transitions:
            raise ValueError("empty rollout buffer")
        obs = np.stack([t.obs for t in self._transitions])
        masks = None
        if self._transitions[0].mask is not None:
            masks = np.stack([t.mask for t in self._transitions])
        return {
            "obs": obs,
            "actions": np.array([t.action for t in self._transitions], dtype=np.intp),
            "rewards": np.array([t.reward for t in self._transitions]),
            "dones": np.array([t.done for t in self._transitions], dtype=bool),
            "log_probs": np.array([t.log_prob for t in self._transitions]),
            "values": np.array([t.value for t in self._transitions]),
            "masks": masks,
        }

    def clear(self) -> None:
        self._transitions.clear()
        self._episode_bounds = [0]
