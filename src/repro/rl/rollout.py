"""On-policy rollout storage and batched episode collection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.rl.vec_env import VecEnv

__all__ = ["Transition", "RolloutBuffer", "collect_vec_episodes"]


@dataclass(frozen=True)
class Transition:
    """One environment step as stored during a rollout."""

    obs: np.ndarray
    action: int
    reward: float
    done: bool
    log_prob: float
    value: float = 0.0
    mask: Optional[np.ndarray] = None


class RolloutBuffer:
    """Accumulates transitions for one or more episodes, then batches them.

    ``episodes()`` yields per-episode slices (REINFORCE needs full-episode
    returns); ``batch()`` concatenates everything (A2C/PPO operate on the
    flat batch with per-step dones).
    """

    def __init__(self) -> None:
        self._transitions: List[Transition] = []
        self._episode_bounds: List[int] = [0]

    def add(self, transition: Transition) -> None:
        self._transitions.append(transition)
        if transition.done:
            self._episode_bounds.append(len(self._transitions))

    def end_episode(self) -> None:
        """Force an episode boundary (for truncated, non-done episodes)."""
        if self._episode_bounds[-1] != len(self._transitions):
            self._episode_bounds.append(len(self._transitions))

    def __len__(self) -> int:
        return len(self._transitions)

    @property
    def num_episodes(self) -> int:
        return len(self._episode_bounds) - 1

    def episodes(self) -> List[List[Transition]]:
        """Per-episode transition lists (trailing partial episode included)."""
        bounds = list(self._episode_bounds)
        if bounds[-1] != len(self._transitions):
            bounds.append(len(self._transitions))
        return [
            self._transitions[bounds[i] : bounds[i + 1]]
            for i in range(len(bounds) - 1)
            if bounds[i + 1] > bounds[i]
        ]

    def batch(self) -> Dict[str, np.ndarray]:
        """Flat arrays over every stored transition."""
        if not self._transitions:
            raise ValueError("empty rollout buffer")
        obs = np.stack([t.obs for t in self._transitions])
        masks = None
        if self._transitions[0].mask is not None:
            masks = np.stack([t.mask for t in self._transitions])
        return {
            "obs": obs,
            "actions": np.array([t.action for t in self._transitions], dtype=np.intp),
            "rewards": np.array([t.reward for t in self._transitions]),
            "dones": np.array([t.done for t in self._transitions], dtype=bool),
            "log_probs": np.array([t.log_prob for t in self._transitions]),
            "values": np.array([t.value for t in self._transitions]),
            "masks": masks,
        }

    def clear(self) -> None:
        self._transitions.clear()
        self._episode_bounds = [0]


def collect_vec_episodes(
    agent,
    vec_env: "VecEnv",
    buffer: RolloutBuffer,
    episodes: int,
    max_steps: int,
    with_values: bool = True,
    greedy: bool = False,
) -> List[float]:
    """Collect ``episodes`` completed episodes through a vectorized env.

    Steps all environments in lockstep with **batched** action selection
    (one policy forward + one RNG draw per step for the whole batch).
    Value estimates, when requested, are computed *deferred*: one batched
    ``value_fn.predict`` over each completed episode instead of a
    one-row forward per step — identical numbers, a fraction of the cost,
    because the networks do not change during collection.

    Completed episodes are flushed to ``buffer`` in completion order; the
    partial episodes still in flight when the quota is reached are
    discarded (they would otherwise bias the batch toward early-episode
    states). An episode hitting ``max_steps`` is truncated exactly like
    the serial collectors truncate (buffer boundary without a terminal
    flag) and its environment is reset.

    Returns the per-episode undiscounted returns, in completion order.
    """
    policy = agent.policy
    value_fn = getattr(agent, "value_fn", None) if with_values else None
    num = vec_env.num_envs
    obs = vec_env.reset()
    # One (obs, action, reward, logp, mask) tuple appended per env per
    # step; all scalar conversions and Transition construction happen at
    # episode flush so the per-step loop stays lean.
    trajectories: List[List[tuple]] = [[] for _ in range(num)]
    returns: List[float] = []

    def flush(i: int, done: bool) -> None:
        steps_i = trajectories[i]
        if not steps_i:
            return
        if value_fn is not None:
            values = value_fn.predict(np.stack([s[0] for s in steps_i]))
        else:
            values = np.zeros(len(steps_i))
        last = len(steps_i) - 1
        total = 0.0
        for t, (o, a, r, lp, mk) in enumerate(steps_i):
            r = float(r)
            total += r
            buffer.add(Transition(
                obs=o, action=int(a), reward=r, done=done and t == last,
                log_prob=float(lp), value=float(values[t]), mask=mk,
            ))
        if not done:
            buffer.end_episode()
        returns.append(total)
        trajectories[i] = []

    while len(returns) < episodes:
        masks = vec_env.action_masks()
        actions, logps = policy.act_batch(obs, agent.rng, masks=masks,
                                          greedy=greedy)
        next_obs, rewards, dones, _ = vec_env.step(actions)
        for i in range(num):
            traj = trajectories[i]
            traj.append((obs[i], actions[i], rewards[i], logps[i], masks[i]))
            if len(returns) >= episodes:
                continue  # quota met mid-step: don't flush extra episodes
            if dones[i]:
                flush(i, done=True)
            elif len(traj) >= max_steps:
                flush(i, done=False)
                next_obs[i] = vec_env.reset_env(i)
        obs = next_obs
    return returns[:episodes]
