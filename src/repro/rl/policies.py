"""Masked categorical policy and state-value function over the NN stack.

The policy owns the logits network and implements the *analytic* gradient
of the policy-gradient objectives directly at the logits (the softmax /
log-softmax Jacobians are folded in by hand), then backpropagates through
the network. This keeps every agent a few lines of NumPy and makes the
gradients unit-testable against finite differences.

Masking convention: invalid logits are shifted to ``MASK_VALUE`` before
the softmax; their probabilities underflow to ~0 and their gradient
contribution vanishes, so masked actions are never sampled nor trained.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import Sequential, mlp
from repro.nn.utils import entropy_of_probs, log_softmax, softmax

__all__ = ["CategoricalPolicy", "ValueFunction", "MASK_VALUE"]

MASK_VALUE = -1e9


def _apply_mask(logits: np.ndarray, masks: Optional[np.ndarray]) -> np.ndarray:
    if masks is None:
        return logits
    masks = np.atleast_2d(np.asarray(masks, dtype=bool))
    if masks.shape != logits.shape:
        raise ValueError(f"mask shape {masks.shape} != logits shape {logits.shape}")
    if not masks.any(axis=1).all():
        raise ValueError("every row must have at least one valid action")
    return np.where(masks, logits, MASK_VALUE)


class CategoricalPolicy:
    """Stochastic policy ``pi(a|s) = softmax(net(s))`` with action masking."""

    def __init__(self, net: Sequential) -> None:
        self.net = net

    @classmethod
    def for_sizes(
        cls,
        obs_dim: int,
        n_actions: int,
        hidden: Tuple[int, ...],
        rng: np.random.Generator,
        activation: str = "tanh",
    ) -> "CategoricalPolicy":
        """Build an MLP policy ``obs_dim -> hidden... -> n_actions``."""
        return cls(mlp([obs_dim, *hidden, n_actions], rng, activation=activation))

    # --- inference -------------------------------------------------------------
    def probs(self, obs: np.ndarray, masks: Optional[np.ndarray] = None) -> np.ndarray:
        """Action probabilities for a batch (or single) observation."""
        obs = np.atleast_2d(obs)
        logits = _apply_mask(self.net.forward(obs), self._expand_mask(masks, obs.shape[0]))
        return softmax(logits, axis=-1)

    def act(
        self,
        obs: np.ndarray,
        rng: np.random.Generator,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> Tuple[int, float]:
        """Sample (or argmax) one action; returns ``(action, log_prob)``."""
        p = self.probs(obs, None if mask is None else mask[None, :])[0]
        if greedy:
            action = int(np.argmax(p))
        else:
            # Guard against tiny numerical drift in the simplex.
            p = p / p.sum()
            action = int(rng.choice(p.shape[0], p=p))
        return action, float(np.log(max(p[action], 1e-12)))

    def act_batch(
        self,
        obs: np.ndarray,
        rng: np.random.Generator,
        masks: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample (or argmax) one action per row of a batched observation.

        One network forward and one RNG draw serve the whole batch — the
        vectorized-rollout counterpart of :meth:`act`. Returns
        ``(actions, log_probs)`` with shape ``(B,)`` each.
        """
        logits = self.net.forward(obs)
        if masks is not None:
            # (Fresh array: layer caches must not be mutated in place.)
            logits = np.where(masks, logits, MASK_VALUE)
        p = softmax(logits, axis=-1)
        if greedy:
            actions = np.argmax(p, axis=-1)
        else:
            p /= p.sum(axis=-1, keepdims=True)
            # Vectorized categorical sampling by inverse CDF.
            u = rng.random(p.shape[0])
            actions = (p.cumsum(axis=-1) < u[:, None]).sum(axis=-1)
            actions = np.minimum(actions, p.shape[1] - 1)
            if masks is not None:
                # Float-tail edge: if u lands past the last nonzero
                # cumulative bin the count can point at a masked slot;
                # fall back to the row argmax (always valid).
                rows = np.arange(p.shape[0])
                bad = ~np.atleast_2d(masks)[rows, actions]
                if bad.any():
                    actions[bad] = np.argmax(p[bad], axis=-1)
        log_probs = np.log(np.maximum(p[np.arange(p.shape[0]), actions], 1e-12))
        return actions.astype(np.intp), log_probs

    def log_probs_and_entropy(
        self,
        obs: np.ndarray,
        actions: np.ndarray,
        masks: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``log pi(a|s)`` and policy entropy (no caching)."""
        obs = np.atleast_2d(obs)
        actions = np.asarray(actions, dtype=np.intp)
        logits = _apply_mask(self.net.forward(obs), self._expand_mask(masks, obs.shape[0]))
        logp_all = log_softmax(logits, axis=-1)
        p = np.exp(logp_all)
        logp = logp_all[np.arange(obs.shape[0]), actions]
        return logp, entropy_of_probs(p)

    # --- training --------------------------------------------------------------
    def policy_gradient_step(
        self,
        obs: np.ndarray,
        actions: np.ndarray,
        coefficients: np.ndarray,
        masks: Optional[np.ndarray] = None,
        entropy_coef: float = 0.0,
    ) -> Tuple[float, float]:
        """Accumulate grads of ``-mean(coef * log pi(a|s)) - ent_coef * mean(H)``.

        ``coefficients`` is the per-sample scalar multiplying the score
        function: the return for REINFORCE, the advantage for A2C, or
        ``ratio-gated advantage`` pieces for PPO (which uses
        :meth:`ppo_step` instead). The caller zeroes grads and steps the
        optimizer. Returns ``(pg_loss, mean_entropy)``.
        """
        obs = np.atleast_2d(obs)
        n = obs.shape[0]
        actions = np.asarray(actions, dtype=np.intp)
        coefficients = np.asarray(coefficients, dtype=np.float64)
        masks_b = self._expand_mask(masks, n)
        logits = _apply_mask(self.net.forward(obs), masks_b)
        p = softmax(logits, axis=-1)
        logp_all = log_softmax(logits, axis=-1)
        logp = logp_all[np.arange(n), actions]
        ent = entropy_of_probs(p)

        # d/dlogits of -coef * logp(a): coef * (p - onehot)
        dlogits = p * coefficients[:, None]
        dlogits[np.arange(n), actions] -= coefficients
        if entropy_coef > 0.0:
            # d/dlogits of -H = p * (log p + H)
            safe_logp = np.where(p > 1e-12, logp_all, 0.0)
            dlogits += entropy_coef * p * (safe_logp + ent[:, None])
        dlogits /= n
        self.net.backward(dlogits)

        pg_loss = float(-np.mean(coefficients * logp))
        return pg_loss, float(np.mean(ent))

    def ppo_step(
        self,
        obs: np.ndarray,
        actions: np.ndarray,
        advantages: np.ndarray,
        old_log_probs: np.ndarray,
        clip_eps: float,
        masks: Optional[np.ndarray] = None,
        entropy_coef: float = 0.0,
    ) -> Tuple[float, float, float]:
        """Accumulate grads of the PPO clipped surrogate.

        Returns ``(surrogate_loss, mean_entropy, clip_fraction)``.
        """
        obs = np.atleast_2d(obs)
        n = obs.shape[0]
        actions = np.asarray(actions, dtype=np.intp)
        advantages = np.asarray(advantages, dtype=np.float64)
        old_log_probs = np.asarray(old_log_probs, dtype=np.float64)
        masks_b = self._expand_mask(masks, n)
        logits = _apply_mask(self.net.forward(obs), masks_b)
        p = softmax(logits, axis=-1)
        logp_all = log_softmax(logits, axis=-1)
        logp = logp_all[np.arange(n), actions]
        ent = entropy_of_probs(p)

        ratio = np.exp(logp - old_log_probs)
        unclipped = ratio * advantages
        clipped = np.clip(ratio, 1.0 - clip_eps, 1.0 + clip_eps) * advantages
        surrogate = np.minimum(unclipped, clipped)
        # Gradient flows only where the unclipped term is the active min.
        active = unclipped <= clipped
        coef = np.where(active, ratio * advantages, 0.0)

        dlogits = p * coef[:, None]
        dlogits[np.arange(n), actions] -= coef
        if entropy_coef > 0.0:
            safe_logp = np.where(p > 1e-12, logp_all, 0.0)
            dlogits += entropy_coef * p * (safe_logp + ent[:, None])
        dlogits /= n
        self.net.backward(dlogits)

        loss = float(-np.mean(surrogate))
        clip_frac = float(np.mean(~active))
        return loss, float(np.mean(ent)), clip_frac

    # --- plumbing --------------------------------------------------------------
    def params(self) -> List[np.ndarray]:
        return self.net.params()

    def grads(self) -> List[np.ndarray]:
        return self.net.grads()

    def zero_grad(self) -> None:
        self.net.zero_grad()

    @staticmethod
    def _expand_mask(masks: Optional[np.ndarray], n: int) -> Optional[np.ndarray]:
        if masks is None:
            return None
        masks = np.asarray(masks, dtype=bool)
        if masks.ndim == 1:
            masks = np.broadcast_to(masks, (n, masks.shape[0]))
        return masks


class ValueFunction:
    """State-value approximator ``V(s)`` trained by squared error."""

    def __init__(self, net: Sequential) -> None:
        self.net = net

    @classmethod
    def for_sizes(
        cls,
        obs_dim: int,
        hidden: Tuple[int, ...],
        rng: np.random.Generator,
        activation: str = "tanh",
    ) -> "ValueFunction":
        return cls(mlp([obs_dim, *hidden, 1], rng, activation=activation))

    def predict(self, obs: np.ndarray) -> np.ndarray:
        """Batched value predictions as a 1-D array."""
        return self.net.forward(np.atleast_2d(obs)).ravel()

    def mse_step(self, obs: np.ndarray, targets: np.ndarray) -> float:
        """Accumulate grads of ``mean((V(s) - target)^2)``; returns the loss."""
        obs = np.atleast_2d(obs)
        targets = np.asarray(targets, dtype=np.float64).reshape(-1, 1)
        pred = self.net.forward(obs)
        if pred.shape != targets.shape:
            raise ValueError(f"targets shape {targets.shape} != pred {pred.shape}")
        diff = pred - targets
        self.net.backward((2.0 / diff.size) * diff)
        return float(np.mean(diff * diff))

    def params(self) -> List[np.ndarray]:
        return self.net.params()

    def grads(self) -> List[np.ndarray]:
        return self.net.grads()

    def zero_grad(self) -> None:
        self.net.zero_grad()
