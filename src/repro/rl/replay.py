"""Experience replay buffer for off-policy (DQN) learning.

Ring-buffer over preallocated arrays: no per-transition allocation, O(1)
insertion, vectorized minibatch sampling — the hot path of DQN training.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Fixed-capacity uniform replay over preallocated NumPy storage."""

    def __init__(self, capacity: int, obs_dim: int, n_actions: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if obs_dim <= 0 or n_actions <= 0:
            raise ValueError("obs_dim and n_actions must be positive")
        self.capacity = capacity
        self.obs = np.zeros((capacity, obs_dim))
        self.next_obs = np.zeros((capacity, obs_dim))
        self.actions = np.zeros(capacity, dtype=np.intp)
        self.rewards = np.zeros(capacity)
        self.dones = np.zeros(capacity, dtype=bool)
        self.next_masks = np.ones((capacity, n_actions), dtype=bool)
        self._size = 0
        self._head = 0

    def __len__(self) -> int:
        return self._size

    def add(
        self,
        obs: np.ndarray,
        action: int,
        reward: float,
        next_obs: np.ndarray,
        done: bool,
        next_mask: np.ndarray,
    ) -> None:
        i = self._head
        self.obs[i] = obs
        self.actions[i] = action
        self.rewards[i] = reward
        self.next_obs[i] = next_obs
        self.dones[i] = done
        self.next_masks[i] = next_mask
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Uniform minibatch (with replacement only if buffer < batch)."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        replace = self._size < batch_size
        idx = rng.choice(self._size, size=batch_size, replace=replace)
        return {
            "obs": self.obs[idx],
            "actions": self.actions[idx],
            "rewards": self.rewards[idx],
            "next_obs": self.next_obs[idx],
            "dones": self.dones[idx],
            "next_masks": self.next_masks[idx],
        }
