"""Advantage actor-critic (synchronous A2C) with GAE."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.optim import Adam
from repro.nn.utils import clip_gradients_
from repro.rl.env import Env
from repro.rl.policies import CategoricalPolicy, ValueFunction
from repro.rl.returns import gae_advantages, normalize_advantages
from repro.rl.rollout import RolloutBuffer, Transition, collect_vec_episodes

__all__ = ["A2CConfig", "A2CAgent"]


@dataclass(frozen=True)
class A2CConfig:
    """Hyperparameters for :class:`A2CAgent`."""

    gamma: float = 0.99
    gae_lambda: float = 0.95
    lr: float = 3e-4
    value_lr: float = 1e-3
    entropy_coef: float = 0.01
    normalize: bool = True
    max_grad_norm: float = 5.0
    hidden: Tuple[int, ...] = (64, 64)


class A2CAgent:
    """Actor-critic with GAE advantages; one gradient step per batch."""

    def __init__(
        self,
        obs_dim: int,
        n_actions: int,
        config: A2CConfig,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.rng = rng
        self.policy = CategoricalPolicy.for_sizes(obs_dim, n_actions, config.hidden, rng)
        self.value_fn = ValueFunction.for_sizes(obs_dim, config.hidden, rng)
        self.optimizer = Adam(self.policy.params(), self.policy.grads(), lr=config.lr)
        self.value_opt = Adam(self.value_fn.params(), self.value_fn.grads(), lr=config.value_lr)

    def act(self, obs: np.ndarray, mask: Optional[np.ndarray] = None,
            greedy: bool = False) -> Tuple[int, float]:
        """Select an action; returns ``(action, log_prob)``."""
        return self.policy.act(obs, self.rng, mask=mask, greedy=greedy)

    def collect_episode(
        self, env: Env, buffer: RolloutBuffer, max_steps: int
    ) -> float:
        """Roll one episode (with value estimates) into ``buffer``."""
        obs = env.reset()
        total = 0.0
        for _ in range(max_steps):
            mask = env.action_mask()
            action, logp = self.act(obs, mask=mask)
            value = float(self.value_fn.predict(obs)[0])
            next_obs, reward, done, _ = env.step(action)
            buffer.add(Transition(obs=obs, action=action, reward=reward,
                                  done=done, log_prob=logp, value=value, mask=mask))
            total += reward
            obs = next_obs
            if done:
                return total
        buffer.end_episode()
        return total

    def update(self, buffer: RolloutBuffer) -> Dict[str, float]:
        """One actor and one critic gradient step over the batch."""
        cfg = self.config
        episodes = buffer.episodes()
        if not episodes:
            raise ValueError("no episodes to update from")

        obs_list, act_list, adv_list, tgt_list, mask_list = [], [], [], [], []
        for ep in episodes:
            rewards = np.array([t.reward for t in ep])
            values = np.array([t.value for t in ep])
            adv = gae_advantages(rewards, values, cfg.gamma, cfg.gae_lambda)
            targets = adv + values
            adv_list.append(adv)
            tgt_list.append(targets)
            obs_list.extend(t.obs for t in ep)
            act_list.extend(t.action for t in ep)
            mask_list.extend(t.mask if t.mask is not None else None for t in ep)

        obs = np.stack(obs_list)
        actions = np.array(act_list, dtype=np.intp)
        advantages = np.concatenate(adv_list)
        targets = np.concatenate(tgt_list)
        masks = np.stack(mask_list) if mask_list and mask_list[0] is not None else None

        if cfg.normalize:
            advantages = normalize_advantages(advantages)

        self.policy.zero_grad()
        pg_loss, entropy = self.policy.policy_gradient_step(
            obs, actions, advantages, masks=masks, entropy_coef=cfg.entropy_coef
        )
        grad_norm = clip_gradients_(self.policy.grads(), cfg.max_grad_norm)
        self.optimizer.step()

        self.value_fn.zero_grad()
        value_loss = self.value_fn.mse_step(obs, targets)
        clip_gradients_(self.value_fn.grads(), cfg.max_grad_norm)
        self.value_opt.step()

        return {
            "pg_loss": pg_loss,
            "value_loss": value_loss,
            "entropy": entropy,
            "grad_norm": grad_norm,
        }

    def train(
        self,
        env: Env,
        iterations: int,
        episodes_per_iter: int = 4,
        max_steps: int = 1000,
    ) -> List[Dict[str, float]]:
        """Standard training loop; returns per-iteration stat dicts.

        ``env`` may be a single environment (serial episode collection)
        or a :class:`~repro.rl.vec_env.VecEnv` (batched lockstep
        collection of the same number of episodes per iteration).
        """
        from repro.rl.vec_env import VecEnv

        history: List[Dict[str, float]] = []
        for _ in range(iterations):
            buffer = RolloutBuffer()
            if isinstance(env, VecEnv):
                ep_returns = collect_vec_episodes(
                    self, env, buffer, episodes_per_iter, max_steps)
            else:
                ep_returns = [
                    self.collect_episode(env, buffer, max_steps)
                    for _ in range(episodes_per_iter)
                ]
            stats = self.update(buffer)
            stats["episode_return"] = float(np.mean(ep_returns))
            history.append(stats)
        return history
