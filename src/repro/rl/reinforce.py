"""REINFORCE with a baseline — the algorithm DeepRM trained with.

Two baseline variants are provided:

* ``"value"`` — a learned state-value network (default),
* ``"time"``  — DeepRM's original time-dependent baseline: the mean
  return at each timestep across the episodes of the batch,
* ``"none"``  — raw returns (high variance; kept for the E12 comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.optim import Adam
from repro.nn.utils import clip_gradients_
from repro.rl.env import Env
from repro.rl.policies import CategoricalPolicy, ValueFunction
from repro.rl.returns import discounted_returns, normalize_advantages
from repro.rl.rollout import RolloutBuffer, Transition, collect_vec_episodes

__all__ = ["ReinforceConfig", "ReinforceAgent"]


@dataclass(frozen=True)
class ReinforceConfig:
    """Hyperparameters for :class:`ReinforceAgent`."""

    gamma: float = 0.99
    lr: float = 3e-4
    value_lr: float = 1e-3
    entropy_coef: float = 0.01
    baseline: str = "value"          # "value" | "time" | "none"
    normalize: bool = True
    max_grad_norm: float = 5.0
    hidden: Tuple[int, ...] = (64, 64)

    def __post_init__(self) -> None:
        if self.baseline not in ("value", "time", "none"):
            raise ValueError("baseline must be 'value', 'time', or 'none'")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")


class ReinforceAgent:
    """Monte-Carlo policy gradient with a configurable baseline."""

    def __init__(
        self,
        obs_dim: int,
        n_actions: int,
        config: ReinforceConfig,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.rng = rng
        self.policy = CategoricalPolicy.for_sizes(obs_dim, n_actions, config.hidden, rng)
        self.optimizer = Adam(self.policy.params(), self.policy.grads(), lr=config.lr)
        self.value_fn: Optional[ValueFunction] = None
        self.value_opt: Optional[Adam] = None
        if config.baseline == "value":
            self.value_fn = ValueFunction.for_sizes(obs_dim, config.hidden, rng)
            self.value_opt = Adam(
                self.value_fn.params(), self.value_fn.grads(), lr=config.value_lr
            )

    # --- acting -----------------------------------------------------------------
    def act(self, obs: np.ndarray, mask: Optional[np.ndarray] = None,
            greedy: bool = False) -> Tuple[int, float]:
        """Select an action; returns ``(action, log_prob)``."""
        return self.policy.act(obs, self.rng, mask=mask, greedy=greedy)

    def collect_episode(
        self, env: Env, buffer: RolloutBuffer, max_steps: int, greedy: bool = False
    ) -> float:
        """Roll one episode into ``buffer``; returns the episode return."""
        obs = env.reset()
        total = 0.0
        for _ in range(max_steps):
            mask = env.action_mask()
            action, logp = self.act(obs, mask=mask, greedy=greedy)
            next_obs, reward, done, _ = env.step(action)
            buffer.add(Transition(obs=obs, action=action, reward=reward,
                                  done=done, log_prob=logp, mask=mask))
            total += reward
            obs = next_obs
            if done:
                return total
        buffer.end_episode()
        return total

    # --- learning ---------------------------------------------------------------
    def update(self, buffer: RolloutBuffer) -> Dict[str, float]:
        """One policy-gradient step from a batch of complete episodes."""
        episodes = buffer.episodes()
        if not episodes:
            raise ValueError("no episodes to update from")
        cfg = self.config

        all_obs: List[np.ndarray] = []
        all_actions: List[int] = []
        all_masks: List[np.ndarray] = []
        all_returns: List[np.ndarray] = []
        per_step_returns: List[np.ndarray] = []
        for ep in episodes:
            rewards = np.array([t.reward for t in ep])
            rets = discounted_returns(rewards, cfg.gamma)
            per_step_returns.append(rets)
            all_returns.append(rets)
            all_obs.extend(t.obs for t in ep)
            all_actions.extend(t.action for t in ep)
            all_masks.extend(t.mask if t.mask is not None else None for t in ep)

        obs = np.stack(all_obs)
        actions = np.array(all_actions, dtype=np.intp)
        returns = np.concatenate(all_returns)
        masks = None
        if all_masks and all_masks[0] is not None:
            masks = np.stack(all_masks)

        value_loss = 0.0
        if cfg.baseline == "value":
            assert self.value_fn is not None and self.value_opt is not None
            baselines = self.value_fn.predict(obs)
            self.value_fn.zero_grad()
            value_loss = self.value_fn.mse_step(obs, returns)
            clip_gradients_(self.value_fn.grads(), cfg.max_grad_norm)
            self.value_opt.step()
            advantages = returns - baselines
        elif cfg.baseline == "time":
            max_len = max(len(r) for r in per_step_returns)
            sums = np.zeros(max_len)
            counts = np.zeros(max_len)
            for rets in per_step_returns:
                sums[: len(rets)] += rets
                counts[: len(rets)] += 1
            time_baseline = sums / np.maximum(counts, 1)
            advantages = np.concatenate(
                [rets - time_baseline[: len(rets)] for rets in per_step_returns]
            )
        else:
            advantages = returns.copy()

        if cfg.normalize:
            advantages = normalize_advantages(advantages)

        self.policy.zero_grad()
        pg_loss, entropy = self.policy.policy_gradient_step(
            obs, actions, advantages, masks=masks, entropy_coef=cfg.entropy_coef
        )
        grad_norm = clip_gradients_(self.policy.grads(), cfg.max_grad_norm)
        self.optimizer.step()

        return {
            "pg_loss": pg_loss,
            "value_loss": value_loss,
            "entropy": entropy,
            "grad_norm": grad_norm,
            "mean_return": float(np.mean([r[0] for r in per_step_returns])),
        }

    def train(
        self,
        env: Env,
        iterations: int,
        episodes_per_iter: int = 4,
        max_steps: int = 1000,
    ) -> List[Dict[str, float]]:
        """Standard training loop; returns per-iteration stat dicts.

        ``env`` may be a single environment (serial episode collection)
        or a :class:`~repro.rl.vec_env.VecEnv` (batched lockstep
        collection of the same number of episodes per iteration).
        """
        from repro.rl.vec_env import VecEnv

        history: List[Dict[str, float]] = []
        for _ in range(iterations):
            buffer = RolloutBuffer()
            if isinstance(env, VecEnv):
                ep_returns = collect_vec_episodes(
                    self, env, buffer, episodes_per_iter, max_steps,
                    with_values=False)
            else:
                ep_returns = [
                    self.collect_episode(env, buffer, max_steps)
                    for _ in range(episodes_per_iter)
                ]
            stats = self.update(buffer)
            stats["episode_return"] = float(np.mean(ep_returns))
            history.append(stats)
        return history
