"""Environment protocol.

A trimmed Gym-style API plus one addition the scheduling domain needs:
``action_mask()`` — the set of currently-valid actions. All agents in
:mod:`repro.rl` respect masks, which is essential for the composite
scheduling action space where most actions are invalid most of the time.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.rl.spaces import Box, Discrete

__all__ = ["Env"]


class Env:
    """Abstract episodic environment with masked discrete actions."""

    observation_space: Box
    action_space: Discrete

    def reset(self, seed: Optional[int] = None) -> np.ndarray:
        """Start a new episode; returns the initial observation."""
        raise NotImplementedError

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        """Apply ``action``; returns ``(obs, reward, done, info)``."""
        raise NotImplementedError

    def action_mask(self) -> np.ndarray:
        """Boolean validity mask over the action space (default: all valid)."""
        return np.ones(self.action_space.n, dtype=bool)

    def clone(self, seed: Optional[int] = None) -> "Env":
        """A sibling environment with this one's full configuration.

        The contract :class:`~repro.rl.vec_env.VecEnv` (``from_env``) and
        the serving checkpointer rely on: every constructor option is
        carried over, only the RNG seed may differ, and no episode state
        leaks between siblings. Concrete environments must implement it
        by rebuilding from captured constructor arguments (see
        ``SchedulerEnv.clone``) rather than hand-listing options, which
        silently drops any option added later.
        """
        raise NotImplementedError
