"""Proximal Policy Optimization (clipped surrogate, Schulman et al. 2017).

The strongest learner in the suite (experiment E12) and the default
algorithm of the core scheduler's training loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.optim import Adam
from repro.nn.utils import clip_gradients_
from repro.rl.env import Env
from repro.rl.policies import CategoricalPolicy, ValueFunction
from repro.rl.returns import gae_advantages, normalize_advantages
from repro.rl.rollout import RolloutBuffer, Transition, collect_vec_episodes

__all__ = ["PPOConfig", "PPOAgent"]


@dataclass(frozen=True)
class PPOConfig:
    """Hyperparameters for :class:`PPOAgent`."""

    gamma: float = 0.99
    gae_lambda: float = 0.95
    lr: float = 3e-4
    value_lr: float = 1e-3
    clip_eps: float = 0.2
    epochs: int = 4
    minibatch_size: int = 64
    entropy_coef: float = 0.01
    normalize: bool = True
    max_grad_norm: float = 5.0
    target_kl: Optional[float] = 0.03
    hidden: Tuple[int, ...] = (64, 64)

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.minibatch_size < 1:
            raise ValueError("epochs and minibatch_size must be >= 1")
        if not 0.0 < self.clip_eps < 1.0:
            raise ValueError("clip_eps must be in (0, 1)")


class PPOAgent:
    """Clipped-surrogate PPO with GAE and early stopping on KL."""

    def __init__(
        self,
        obs_dim: int,
        n_actions: int,
        config: PPOConfig,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.rng = rng
        self.policy = CategoricalPolicy.for_sizes(obs_dim, n_actions, config.hidden, rng)
        self.value_fn = ValueFunction.for_sizes(obs_dim, config.hidden, rng)
        self.optimizer = Adam(self.policy.params(), self.policy.grads(), lr=config.lr)
        self.value_opt = Adam(self.value_fn.params(), self.value_fn.grads(), lr=config.value_lr)

    def act(self, obs: np.ndarray, mask: Optional[np.ndarray] = None,
            greedy: bool = False) -> Tuple[int, float]:
        """Select an action; returns ``(action, log_prob)``."""
        return self.policy.act(obs, self.rng, mask=mask, greedy=greedy)

    def collect_episode(self, env: Env, buffer: RolloutBuffer, max_steps: int) -> float:
        """Roll one episode (with value estimates) into ``buffer``."""
        obs = env.reset()
        total = 0.0
        for _ in range(max_steps):
            mask = env.action_mask()
            action, logp = self.act(obs, mask=mask)
            value = float(self.value_fn.predict(obs)[0])
            next_obs, reward, done, _ = env.step(action)
            buffer.add(Transition(obs=obs, action=action, reward=reward,
                                  done=done, log_prob=logp, value=value, mask=mask))
            total += reward
            obs = next_obs
            if done:
                return total
        buffer.end_episode()
        return total

    def update(self, buffer: RolloutBuffer) -> Dict[str, float]:
        """Multiple clipped-surrogate epochs over the rollout batch."""
        cfg = self.config
        episodes = buffer.episodes()
        if not episodes:
            raise ValueError("no episodes to update from")

        obs_list, act_list, adv_list, tgt_list, logp_list, mask_list = [], [], [], [], [], []
        for ep in episodes:
            rewards = np.array([t.reward for t in ep])
            values = np.array([t.value for t in ep])
            adv = gae_advantages(rewards, values, cfg.gamma, cfg.gae_lambda)
            tgt_list.append(adv + values)
            adv_list.append(adv)
            obs_list.extend(t.obs for t in ep)
            act_list.extend(t.action for t in ep)
            logp_list.extend(t.log_prob for t in ep)
            mask_list.extend(t.mask if t.mask is not None else None for t in ep)

        obs = np.stack(obs_list)
        actions = np.array(act_list, dtype=np.intp)
        advantages = np.concatenate(adv_list)
        targets = np.concatenate(tgt_list)
        old_logp = np.array(logp_list)
        masks = np.stack(mask_list) if mask_list and mask_list[0] is not None else None
        if cfg.normalize:
            advantages = normalize_advantages(advantages)

        n = obs.shape[0]
        stats = {"pg_loss": 0.0, "value_loss": 0.0, "entropy": 0.0,
                 "clip_fraction": 0.0, "approx_kl": 0.0}
        updates = 0
        stop = False
        for _ in range(cfg.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, cfg.minibatch_size):
                idx = order[start : start + cfg.minibatch_size]
                mb_masks = masks[idx] if masks is not None else None

                self.policy.zero_grad()
                loss, entropy, clip_frac = self.policy.ppo_step(
                    obs[idx], actions[idx], advantages[idx], old_logp[idx],
                    cfg.clip_eps, masks=mb_masks, entropy_coef=cfg.entropy_coef,
                )
                clip_gradients_(self.policy.grads(), cfg.max_grad_norm)
                self.optimizer.step()

                self.value_fn.zero_grad()
                vloss = self.value_fn.mse_step(obs[idx], targets[idx])
                clip_gradients_(self.value_fn.grads(), cfg.max_grad_norm)
                self.value_opt.step()

                new_logp, _ = self.policy.log_probs_and_entropy(
                    obs[idx], actions[idx], masks=mb_masks
                )
                approx_kl = float(np.mean(old_logp[idx] - new_logp))
                stats["pg_loss"] += loss
                stats["value_loss"] += vloss
                stats["entropy"] += entropy
                stats["clip_fraction"] += clip_frac
                stats["approx_kl"] += approx_kl
                updates += 1
                if cfg.target_kl is not None and approx_kl > cfg.target_kl:
                    stop = True
                    break
            if stop:
                break

        for key in stats:
            stats[key] /= max(updates, 1)
        stats["updates"] = float(updates)
        return stats

    def train(
        self,
        env: Env,
        iterations: int,
        episodes_per_iter: int = 4,
        max_steps: int = 1000,
    ) -> List[Dict[str, float]]:
        """Standard training loop; returns per-iteration stat dicts.

        ``env`` may be a single environment (serial episode collection)
        or a :class:`~repro.rl.vec_env.VecEnv` (batched lockstep
        collection of the same number of episodes per iteration).
        """
        from repro.rl.vec_env import VecEnv

        history: List[Dict[str, float]] = []
        for _ in range(iterations):
            buffer = RolloutBuffer()
            if isinstance(env, VecEnv):
                ep_returns = collect_vec_episodes(
                    self, env, buffer, episodes_per_iter, max_steps)
            else:
                ep_returns = [
                    self.collect_episode(env, buffer, max_steps)
                    for _ in range(episodes_per_iter)
                ]
            stats = self.update(buffer)
            stats["episode_return"] = float(np.mean(ep_returns))
            history.append(stats)
        return history
