"""Sharded parallel evaluation: (scenario, scheduler, trace-seed) cells.

The evaluation grid every sweep and experiment walks factorizes into
independent *cells*: one scheduler evaluated on one reproducible trace of
one scenario. Each cell is deterministic given its
:class:`EvalCell` spec — the trace is regenerated from its seed inside
the worker, the scheduler is instantiated fresh from its factory — so
cells can be executed in any order, on any process, and merged back
deterministically: results are returned in cell order, which makes the
``workers=N`` path byte-identical to the serial one.

The process pool uses the ``spawn`` start method explicitly: it is the
only start method that is safe everywhere (no forked locks, no
inherited RNG state) and it forces the cell specs to be genuinely
picklable, which is exactly the property that also makes them cacheable.
Factories must therefore be module-level callables (plain functions,
:class:`BaselineFactory`, or any picklable callable object) when
``workers > 1``; lambdas and closures still work in the serial path.

A :class:`~repro.harness.cache.ResultCache` short-circuits cells whose
fingerprint key has been computed before — across runs, sessions, and
worker processes.
"""

from __future__ import annotations

import os
import pickle
import sys
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.harness.cache import ResultCache, fingerprint
from repro.harness.scenario import Scenario
from repro.sim.metrics import MetricsReport

__all__ = ["EvalCell", "BaselineFactory", "CellFailure", "run_cells",
           "cell_key"]

SchedulerFactory = Callable[[Scenario], object]


@dataclass(frozen=True)
class BaselineFactory:
    """Picklable factory for one heuristic of the baseline roster.

    ``sweep_schedulers`` factories are often written as lambdas; those
    cannot cross a ``spawn`` process boundary. This one can — use it
    (or any module-level callable) whenever ``workers > 1``.
    """

    name: str
    platform_choice: str = "best"
    parallelism: str = "fit"
    seed: int = 0

    def __call__(self, scenario: Scenario) -> object:
        from repro.baselines import baseline_roster

        roster = baseline_roster(self.platform_choice, self.parallelism,
                                 self.seed)
        if self.name not in roster:
            raise KeyError(
                f"unknown baseline {self.name!r}; choose from {sorted(roster)}")
        return roster[self.name]


@dataclass(frozen=True)
class EvalCell:
    """One unit of evaluation work: scheduler x scenario x trace seed.

    Fully self-describing and picklable: a worker process reconstructs
    the trace from ``trace_seed`` and the scheduler from ``factory``, so
    shipping a cell costs bytes, not simulations.
    """

    scenario_name: str
    scenario: Scenario
    scheduler_name: str
    factory: SchedulerFactory
    trace_index: int
    trace_seed: int
    max_ticks: int

    def describe(self) -> str:
        return (f"(scenario={self.scenario_name!r}, "
                f"scheduler={self.scheduler_name!r}, "
                f"trace_seed={self.trace_seed})")


class CellFailure(RuntimeError):
    """An evaluation cell raised; carries the cell identity and traceback."""


def cell_key(cell: EvalCell) -> str:
    """Persistent cache key: a fingerprint of everything the result
    depends on — scenario spec, scheduler name + full parameterization
    (the *instantiated* scheduler, so a DRL policy's weights are part of
    the key), trace seed, engine, and tick budget."""
    policy = cell.factory(cell.scenario)
    return fingerprint(cell.scenario, cell.scheduler_name, policy,
                       cell.trace_seed, cell.scenario.engine, cell.max_ticks)


def run_cell(cell: EvalCell) -> MetricsReport:
    """Execute one cell: regenerate the trace, evaluate, report.

    Windowed segment scenarios (anything exposing ``evaluate_segment``,
    i.e. :class:`~repro.harness.library.TraceWindowScenario`) return a
    mergeable :class:`~repro.sim.metrics.SegmentMetrics` instead of a
    whole-run report; :func:`~repro.sim.metrics.merge_segments` reduces
    them across windows.
    """
    policy = cell.factory(cell.scenario)
    evaluate_segment = getattr(cell.scenario, "evaluate_segment", None)
    if evaluate_segment is not None:
        return evaluate_segment(policy, cell.trace_seed)
    from repro.core.training import evaluate_scheduler

    trace = cell.scenario.trace(cell.trace_seed)
    return evaluate_scheduler(
        policy, cell.scenario.platforms, [trace],
        max_ticks=cell.max_ticks, engine=cell.scenario.engine,
    )[0]


def _run_cell_shielded(cell: EvalCell) -> Tuple[str, object]:
    """Worker entry point: never raises.

    Exceptions are returned as data (a formatted traceback) rather than
    pickled across the process boundary — custom exception types may not
    survive unpickling, and the parent wants the cell identity attached
    anyway.
    """
    try:
        return "ok", run_cell(cell)
    except Exception as exc:
        return "err", (cell.describe(), repr(exc), traceback.format_exc())


def _failure_error(outcome: Tuple[str, object]) -> CellFailure:
    desc, err, tb = outcome[1]
    return CellFailure(
        f"evaluation cell {desc} failed: {err}\n"
        f"--- worker traceback ---\n{tb}")


def _spawn_is_safe() -> bool:
    """Whether a ``spawn`` child can re-import ``__main__``.

    Scripts piped through stdin (``python - <<EOF``) advertise a
    ``__main__.__file__`` that does not exist on disk; spawn children
    would crash on import and the pool would respawn them forever.
    Detect that case up front and fall back to serial execution.
    """
    main_mod = sys.modules.get("__main__")
    main_file = getattr(main_mod, "__file__", None)
    return main_file is None or os.path.exists(main_file)


def _check_picklable(cells: Sequence[EvalCell]) -> None:
    for cell in cells:
        try:
            pickle.dumps(cell)
        except Exception as exc:
            raise ValueError(
                f"cell {cell.describe()} is not picklable ({exc!r}); "
                "workers > 1 requires module-level scheduler factories "
                "(e.g. repro.harness.parallel.BaselineFactory), not "
                "lambdas or closures") from exc


def run_cells(
    cells: Sequence[EvalCell],
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    backend=None,
) -> List[MetricsReport]:
    """Evaluate every cell; returns reports in cell order.

    Compatibility wrapper over
    :func:`repro.harness.executor.execute_cells`, which owns the
    cache-probe/dispatch/merge logic. ``workers > 1`` shards the
    uncached cells over a ``spawn`` process pool; ``workers=None``
    resolves to the CPUs this process may run on
    (:func:`~repro.harness.executor.available_cpus`, affinity-aware).
    ``backend`` picks an explicit executor backend (an instance or a
    ``"serial"`` / ``"pool"`` / ``"queue"`` name) instead of the legacy
    serial-or-pool dispatch. With a ``cache``, previously computed
    cells are served from disk and only the misses are executed (and
    written back). The merged result is independent of backend,
    ``workers``, and the hit/miss split: cell ``i``'s report always
    lands at index ``i``.
    """
    from repro.harness.executor import available_cpus, execute_cells

    if workers is None:
        workers = available_cpus()
    if backend is None and workers < 1:
        raise ValueError("workers must be >= 1")
    return execute_cells(cells, backend=backend, workers=workers, cache=cache)
