"""ASCII line plots — figure output that survives a terminal-only environment."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["ascii_line_plot"]


def ascii_line_plot(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more named series into an ASCII grid.

    Each series is resampled to ``width`` columns; distinct marker
    characters identify series (legend printed below). Used by the
    benchmark modules to emit the paper's *figures* as text.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 4:
        raise ValueError("plot too small")
    markers = "*o+x#@%&"
    arrays = {name: np.asarray(vals, dtype=float) for name, vals in series.items()}
    for name, arr in arrays.items():
        if arr.size == 0:
            raise ValueError(f"series {name!r} is empty")
    y_min = min(float(a.min()) for a in arrays.values())
    y_max = max(float(a.max()) for a in arrays.values())
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, arr) in enumerate(arrays.items()):
        marker = markers[idx % len(markers)]
        xs = np.linspace(0, arr.size - 1, width)
        resampled = np.interp(xs, np.arange(arr.size), arr)
        rows = ((resampled - y_min) / (y_max - y_min) * (height - 1)).round().astype(int)
        for col, row in enumerate(rows):
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:10.3f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(arrays)
    )
    lines.append(f"  {x_label} →   {legend}   ({y_label})")
    return "\n".join(lines)
