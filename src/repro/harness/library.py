"""Named scenario library: real-trace-backed scenarios + a registry.

Two :class:`~repro.harness.scenario.Scenario` subclasses make imported
archive traces first-class experimental settings:

* :class:`TraceBackedScenario` holds the parsed raw records and an
  :class:`~repro.workload.ingest.normalize.IngestConfig`;
  ``trace(seed)`` re-runs the seeded normalization, so different trace
  seeds draw *paired variants* of the same archive (identical arrivals
  and demands, fresh class/deadline synthesis) exactly as the synthetic
  generator draws paired traces from one workload config. Its
  ``workload`` field is the archive's *calibrated* surrogate
  (:func:`~repro.workload.ingest.calibrate.calibrate_workload`), so the
  inherited ``train_env`` samples synthetic extrapolations of the trace.
* :class:`FixedTraceScenario` replays one pinned trace file verbatim
  (every seed yields the same jobs) — the setting for "run every
  scheduler on exactly this imported trace".

Both are plain dataclasses over structural, picklable state (records /
payload dicts — never live :class:`~repro.sim.job.Job` objects, whose
process-local ``job_id`` would poison the digest), so the persistent
:class:`~repro.harness.cache.ResultCache` fingerprint and the sharded
parallel runner work on them **unchanged**: same file + same ingest
config => same fingerprint, in every process, forever.

The module also keeps the *named scenario registry* the CLI's
``--scenario`` flag resolves against; :func:`register_scenario` lets
experiment code add entries.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.scenario import Scenario, standard_scenario
from repro.sim.job import Job
from repro.sim.platform import Platform
from repro.workload.ingest.calibrate import calibrate_workload
from repro.workload.ingest.columnar import ColumnarSpec, parse_columnar
from repro.workload.ingest.normalize import (
    IngestConfig,
    measured_load,
    normalize_records,
)
from repro.workload.ingest.records import RawJobRecord
from repro.workload.ingest.swf import parse_swf
from repro.workload.traces import (
    iter_trace,
    iter_trace_window,
    job_payload,
    jobs_from_payload,
    load_trace,
    trace_payload,
)

__all__ = [
    "TraceBackedScenario",
    "FixedTraceScenario",
    "TraceWindowScenario",
    "plan_trace_windows",
    "trace_payloads",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "TRACE_DIR_ENV",
]

#: Environment variable attaching registry-style names to local trace
#: archives: ``get_scenario("kit-fh2")`` resolves
#: ``$REPRO_TRACE_DIR/kit-fh2[.json[.gz]|.jsonl[.gz]|/]`` when the name
#: is not a registered scenario.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


def _default_platforms() -> List[Platform]:
    return [Platform("cpu", 24, 1.0), Platform("gpu", 8, 1.0)]


def _spec_without_source(scenario) -> dict:
    """A scenario's dataclass fields minus provenance (``source``)."""
    import dataclasses

    return {f.name: getattr(scenario, f.name)
            for f in dataclasses.fields(scenario) if f.name != "source"}


@dataclass
class TraceBackedScenario(Scenario):
    """A scenario whose traces are seeded normalizations of one archive.

    Construct via :meth:`from_swf`, :meth:`from_columnar`, or
    :meth:`from_records`; the constructors parse the archive once,
    normalize it with ``config.seed`` to calibrate the synthetic
    surrogate and measure the offered load, and store only structural
    state (records + config) so the instance pickles cheaply and
    fingerprints stably.
    """

    records: Tuple[RawJobRecord, ...] = ()
    ingest: IngestConfig = field(default_factory=IngestConfig)
    source: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.records:
            raise ValueError(
                "TraceBackedScenario needs at least one raw record; "
                "use from_swf/from_columnar/from_records")

    def cache_spec(self) -> dict:
        """Canonical parameterization for the persistent result cache.

        Everything that determines an evaluation result — but not
        ``source``, which is provenance: the same records and config
        parsed from differently-named (or differently-containered)
        copies of an archive must share a cache key.
        """
        return _spec_without_source(self)

    def trace(self, seed: int) -> List[Job]:
        """A paired variant of the archive trace for ``seed``.

        Arrivals, demands, and elasticity windows come from the archive
        (identical across seeds); class membership, platform
        eligibility, and deadlines are re-synthesized from ``seed``.
        """
        return normalize_records(self.records, self.ingest, self.platforms,
                                 seed=seed)

    def with_target_load(self, load: float) -> "TraceBackedScenario":
        """The same archive re-normalized to a different offered load.

        Re-runs the seeded normalization with ``target_load`` replaced —
        the real-trace analogue of :meth:`Scenario.with_load`, and what
        lets the load-sweep experiments dial a trace-backed scenario
        through the paper's load axis. ``max_ticks`` is recomputed for
        the rescaled arrival axis (lowering the load stretches it), so
        every swept point simulates the whole trace rather than
        silently truncating at the original horizon.
        """
        from dataclasses import replace as dc_replace

        return type(self).from_records(
            self.records, dc_replace(self.ingest, target_load=load),
            self.platforms, source=self.source, core=self.core,
            max_ticks=None, engine=self.engine)

    # --- constructors --------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[RawJobRecord],
        ingest: Optional[IngestConfig] = None,
        platforms: Optional[Sequence[Platform]] = None,
        source: str = "<records>",
        core=None,
        max_ticks: Optional[int] = None,
        engine: str = "tick",
    ) -> "TraceBackedScenario":
        from repro.core.config import CoreConfig

        ingest = ingest if ingest is not None else IngestConfig()
        platforms = list(platforms) if platforms is not None \
            else _default_platforms()
        jobs = normalize_records(records, ingest, platforms)
        if not jobs:
            raise ValueError(
                f"no usable jobs after normalizing {source!r} "
                f"(records={len(records)}); loosen the ingest config")
        load = measured_load(jobs, platforms)
        horizon = max(j.arrival_time for j in jobs) + 1
        if max_ticks is None:
            # Leave tail room past the last arrival: longest plausible
            # run plus slack, bounded below for very short windows.
            max_ticks = max(4 * horizon, horizon + 200)
        return cls(
            platforms=platforms,
            workload=calibrate_workload(jobs, horizon=horizon),
            load=load,
            core=core if core is not None else CoreConfig(),
            max_ticks=max_ticks,
            engine=engine,
            records=tuple(records),
            ingest=ingest,
            source=source,
        )

    @classmethod
    def from_swf(cls, path: str, ingest: Optional[IngestConfig] = None,
                 platforms: Optional[Sequence[Platform]] = None,
                 **kwargs) -> "TraceBackedScenario":
        """Build from a Standard Workload Format file (plain or ``.gz``)."""
        _, records = parse_swf(path)
        return cls.from_records(records, ingest, platforms,
                                source=str(path), **kwargs)

    @classmethod
    def from_columnar(cls, path: str, spec: ColumnarSpec,
                      ingest: Optional[IngestConfig] = None,
                      platforms: Optional[Sequence[Platform]] = None,
                      **kwargs) -> "TraceBackedScenario":
        """Build from a columnar CSV trace file (plain or ``.gz``)."""
        _, records = parse_columnar(path, spec)
        return cls.from_records(records, ingest, platforms,
                                source=str(path), **kwargs)


@dataclass
class FixedTraceScenario(Scenario):
    """A scenario that replays one pinned trace verbatim for every seed.

    The trace is stored as its canonical static payload
    (:func:`~repro.workload.traces.trace_payload`), so the fingerprint
    covers exactly the job definitions — not process-local ids or
    runtime state — and ``trace(seed)`` rebuilds fresh ``Job`` objects
    each call (the evaluation driver clones per simulation anyway).
    """

    payload: Tuple[dict, ...] = ()
    source: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.payload:
            raise ValueError("FixedTraceScenario needs a non-empty payload; "
                             "use from_file or from_jobs")

    def cache_spec(self) -> dict:
        """Canonical parameterization for the persistent result cache.

        The payload — not the file path it came from — defines the
        evaluation, so the same trace yields the same cache key whether
        it was imported streamed or materialized, and whichever
        container format (``.json``, ``.jsonl.gz``, shards) holds it.
        """
        return _spec_without_source(self)

    def trace(self, seed: int) -> List[Job]:  # noqa: ARG002 - pinned trace
        return jobs_from_payload(list(self.payload))

    @classmethod
    def from_jobs(cls, jobs: Sequence[Job],
                  platforms: Optional[Sequence[Platform]] = None,
                  source: str = "<jobs>", core=None,
                  max_ticks: Optional[int] = None,
                  engine: str = "tick") -> "FixedTraceScenario":
        from repro.core.config import CoreConfig

        if not jobs:
            raise ValueError(f"trace {source!r} contains no jobs")
        platforms = list(platforms) if platforms is not None \
            else _default_platforms()
        horizon = max(j.arrival_time for j in jobs) + 1
        if max_ticks is None:
            max_ticks = max(4 * horizon, horizon + 200)
        return cls(
            platforms=platforms,
            workload=calibrate_workload(jobs, horizon=horizon),
            load=measured_load(jobs, platforms),
            core=core if core is not None else CoreConfig(),
            max_ticks=max_ticks,
            engine=engine,
            payload=tuple(trace_payload(jobs)),
            source=source,
        )

    @classmethod
    def from_file(cls, path: str,
                  platforms: Optional[Sequence[Platform]] = None,
                  **kwargs) -> "FixedTraceScenario":
        """Build from any saved trace container
        (``.json[.gz]``, ``.jsonl[.gz]``, or a shard directory)."""
        return cls.from_jobs(load_trace(path), platforms,
                             source=str(path), **kwargs)


def trace_payloads(jobs: Sequence[Job]) -> List[dict]:
    """Canonical wire payloads for a trace, in batch submission order.

    Sorted by ``(arrival_time, job_id)`` — the order the batch path
    effectively consumes jobs in, and therefore the order the serving
    replay client must submit them in for the served run to be
    byte-identical to batch (`repro.serve` re-exports this).
    """
    ordered = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
    return [job_payload(job) for job in ordered]


def _window_digest(payload_lines) -> str:
    """Running SHA-256 over a window's canonical job payload lines."""
    import hashlib

    h = hashlib.sha256()
    for line in payload_lines:
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest()


def _payload_line(job: Job) -> str:
    import json

    return json.dumps(job_payload(job), sort_keys=True)


@dataclass
class TraceWindowScenario(Scenario):
    """One contiguous segment of a trace container, as an independent cell.

    The windowed form of :class:`FixedTraceScenario`: instead of
    materializing the whole archive into a payload tuple, the scenario
    stores only *coordinates* — container path, ``[start, start+count)``
    job range, and a content digest over the window's canonical payload
    — and ``trace(seed)`` streams exactly its window's jobs
    (:func:`~repro.workload.traces.iter_trace_window`, shard-skipping on
    manifested directories). Peak memory per cell is bounded by the
    window size, whatever the archive size.

    Each window is an **independent episode on a re-based clock**: the
    window's first arrival (``offset``) is subtracted from every
    arrival/deadline before simulation, and :meth:`evaluate_segment`
    shifts finish times and horizon back onto the global axis in the
    :class:`~repro.sim.metrics.SegmentMetrics` it returns — slowdown,
    JCT, tardiness, and miss decisions are shift-invariant, so
    :func:`~repro.sim.metrics.merge_segments` over all windows
    reproduces the single-pass reduction over the same decomposition
    exactly.

    The cache fingerprint covers the digest (content), never the path
    (provenance): re-sharding or moving the archive keeps cache keys.
    """

    path: str = ""
    start: int = 0
    count: int = 0
    offset: int = 0                 # global arrival tick re-based to 0
    digest: str = ""                # sha256 over canonical payload lines
    window_index: int = 0
    n_windows: int = 1
    source: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.count <= 0:
            raise ValueError("TraceWindowScenario needs a non-empty window; "
                             "use plan_trace_windows")

    def cache_spec(self) -> dict:
        """Canonical parameterization for the persistent result cache.

        Excludes provenance and bookkeeping: the container ``path`` and
        ``source`` (the digest pins the content wherever it lives) and
        the window's position in the plan (``window_index`` /
        ``n_windows``), which cannot affect its result.
        """
        import dataclasses

        skip = {"path", "source", "window_index", "n_windows"}
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self) if f.name not in skip}

    def trace(self, seed: int) -> List[Job]:  # noqa: ARG002 - pinned window
        """Stream this window's jobs, verified and re-based to tick 0."""
        jobs = list(iter_trace_window(self.path, self.start, self.count))
        if len(jobs) != self.count:
            raise ValueError(
                f"trace container {self.path!r} returned {len(jobs)} jobs "
                f"for window [{self.start}, {self.start + self.count}); "
                "the container changed since the window plan was built")
        digest = _window_digest(_payload_line(j) for j in jobs)
        if digest != self.digest:
            raise ValueError(
                f"trace container {self.path!r} content changed since the "
                f"window plan was built (window {self.window_index}: digest "
                f"{digest[:12]} != planned {self.digest[:12]})")
        if self.offset:
            for j in jobs:
                j.arrival_time = j.arrival_time - self.offset
                j.deadline = j.deadline - self.offset
        return jobs

    def evaluate_segment(self, policy, trace_seed: int) -> "object":
        """Simulate this window and return its mergeable accumulator.

        Finish times and the horizon are shifted back onto the global
        time axis (``+offset``); see :class:`SegmentMetrics`.
        """
        from repro.core.training import evaluate_scheduler_runs
        from repro.sim.metrics import SegmentMetrics

        sim = evaluate_scheduler_runs(
            policy, self.platforms, [self.trace(trace_seed)],
            max_ticks=self.max_ticks, engine=self.engine)[0]
        return SegmentMetrics.from_records(
            sim.records(), utilization_series=sim.utilization_series,
            horizon=sim.now + self.offset, offset=float(self.offset))


def plan_trace_windows(
    path: str,
    window_jobs: int,
    platforms: Optional[Sequence[Platform]] = None,
    core=None,
    max_ticks: Optional[int] = None,
    engine: str = "tick",
) -> List[TraceWindowScenario]:
    """Split a trace container into contiguous window scenarios.

    One streaming pass: at most ``window_jobs`` jobs are held in memory
    while each window's digest, offset, calibrated workload surrogate,
    and measured load are computed; the jobs themselves are then
    discarded (cells re-stream their window at evaluation time).

    Requires non-decreasing arrival times (the contract of the streamed
    ingest path, which external-merge-sorts out-of-order archives);
    a violation raises :class:`ValueError` naming the job index, since
    windows of an unsorted trace would not be contiguous time segments.

    ``max_ticks`` overrides the per-window tick budget; by default each
    window gets the :class:`FixedTraceScenario` heuristic budget on its
    re-based horizon.
    """
    from repro.core.config import CoreConfig

    if window_jobs <= 0:
        raise ValueError("window_jobs must be positive")
    platforms = list(platforms) if platforms is not None \
        else _default_platforms()
    core = core if core is not None else CoreConfig()

    windows: List[TraceWindowScenario] = []
    buffer: List[Job] = []
    lines: List[str] = []
    start = 0
    last_arrival = None
    total = 0

    def flush() -> None:
        nonlocal start
        if not buffer:
            return
        offset = buffer[0].arrival_time
        digest = _window_digest(lines)
        for j in buffer:            # re-base for calibration, then discard
            j.arrival_time = j.arrival_time - offset
            j.deadline = j.deadline - offset
        horizon = buffer[-1].arrival_time + 1
        ticks = max_ticks if max_ticks is not None \
            else max(4 * horizon, horizon + 200)
        windows.append(TraceWindowScenario(
            platforms=platforms,
            workload=calibrate_workload(buffer, horizon=horizon),
            load=measured_load(buffer, platforms),
            core=core,
            max_ticks=ticks,
            engine=engine,
            path=str(path),
            start=start,
            count=len(buffer),
            offset=offset,
            digest=digest,
            window_index=len(windows),
            source=str(path),
        ))
        start += len(buffer)
        buffer.clear()
        lines.clear()

    for job in iter_trace(path):
        if last_arrival is not None and job.arrival_time < last_arrival:
            raise ValueError(
                f"trace container {path!r} is not sorted by arrival time "
                f"(job {total} arrives at {job.arrival_time} after "
                f"{last_arrival}); windowed evaluation needs contiguous "
                "time segments — re-import via the streamed ingest path")
        last_arrival = job.arrival_time
        lines.append(_payload_line(job))
        buffer.append(job)
        total += 1
        if len(buffer) >= window_jobs:
            flush()
    flush()
    if not windows:
        raise ValueError(f"trace container {path!r} contains no jobs")
    for w in windows:
        w.n_windows = len(windows)
    return windows


# --- named scenario registry ---------------------------------------------

_REGISTRY: Dict[str, Tuple[Callable[..., Scenario], str]] = {}


def register_scenario(name: str, builder: Callable[..., Scenario],
                      description: str = "") -> None:
    """Register ``builder`` under ``name`` for ``get_scenario``.

    ``builder`` is called with the keyword overrides passed to
    :func:`get_scenario`. Registering an existing name replaces it.
    """
    if not name:
        raise ValueError("scenario name must be non-empty")
    _REGISTRY[name] = (builder, description)


def list_scenarios() -> Dict[str, str]:
    """Registered scenario names -> one-line descriptions."""
    return {name: desc for name, (_, desc) in sorted(_REGISTRY.items())}


def _fuzz_archive_names() -> List[str]:
    """Sorted archived fuzz-scenario names, for resolution and errors."""
    from repro.workload.fuzz.archive import archived_names

    return archived_names()


def _trace_dir_candidates(name: str) -> Tuple[Optional[str], List[str]]:
    """Paths ``$REPRO_TRACE_DIR`` could attach ``name`` to, in order.

    Returns ``(trace_dir, candidates)``; ``trace_dir`` is ``None`` when
    the environment variable is unset or empty.
    """
    root = os.environ.get(TRACE_DIR_ENV, "").strip()
    if not root:
        return None, []
    base = os.path.join(root, name)
    suffixes = ("", ".json", ".json.gz", ".jsonl", ".jsonl.gz")
    return root, [base + suffix for suffix in suffixes]


def get_scenario(name: str, **overrides) -> Scenario:
    """Resolve a scenario by registry name or trace-container path.

    A ``name`` that looks like a saved trace container (``*.json[.gz]``,
    ``*.jsonl[.gz]``, or a shard directory with a ``MANIFEST.json``) is
    loaded as a :class:`FixedTraceScenario` — the CLI route from
    ``repro.cli trace import --out t.jsonl.gz`` straight into
    ``sweep --scenario t.jsonl.gz``. The fingerprint covers the decoded
    job payload, so the same trace yields the same cache key no matter
    which container format (or import path — streamed or materialized)
    produced it.

    Names under ``fuzz/`` resolve through the adversarial-scenario
    archive (:mod:`repro.workload.fuzz.archive`): the scenario is
    rebuilt from the archived knob vector and its fingerprint is
    re-verified, so ``--scenario fuzz/<name>`` replays exactly the
    stress workload the fuzzer archived.

    With ``REPRO_TRACE_DIR`` set, any other name is treated as a local
    archive attachment: ``<dir>/<name>`` with each container suffix (or
    as a shard directory) is tried in order, so imported archives become
    addressable by bare name — ``--scenario kit-fh2`` — without
    registering code. A set-but-unresolvable name is an explicit error
    naming every path that was tried, never a silent fallback.
    """
    from repro.workload.traces import looks_like_trace_path

    if name in _REGISTRY:
        builder, _ = _REGISTRY[name]
        return builder(**overrides)
    if str(name).startswith("fuzz/"):
        from repro.workload.fuzz.archive import load_archived_scenario

        return load_archived_scenario(str(name), **overrides)
    if looks_like_trace_path(str(name)):
        return FixedTraceScenario.from_file(name, **overrides)
    trace_dir, candidates = _trace_dir_candidates(str(name))
    fuzz_names = _fuzz_archive_names()
    if trace_dir is not None:
        for path in candidates:
            # A readable container only: a suffixed file, or a bare name
            # that is a shard directory (MANIFEST.json present).
            if looks_like_trace_path(path) and \
                    (os.path.isfile(path) or os.path.isdir(path)):
                return FixedTraceScenario.from_file(path, **overrides)
        raise KeyError(
            f"unknown scenario {name!r}: not in the registry "
            f"({sorted(_REGISTRY)}), not an archived fuzz scenario "
            f"({fuzz_names}), and no trace container found under "
            f"{TRACE_DIR_ENV}={trace_dir!r} (tried "
            f"{', '.join(sorted(os.path.basename(c) or c for c in candidates))})")
    raise KeyError(
        f"unknown scenario {name!r}; choose from {sorted(_REGISTRY)} or the "
        f"archived fuzz scenarios ({fuzz_names}), pass a saved trace "
        "container (*.json[.gz], *.jsonl[.gz], or a shard directory), or "
        f"set {TRACE_DIR_ENV} to attach names to local trace archives")


# --- built-in entries -----------------------------------------------------

def _standard(**kw) -> Scenario:
    return standard_scenario(**kw)


def _quick(**kw) -> Scenario:
    from repro.harness.experiments import quick_scenario

    return quick_scenario(**kw)


def _swf_fixture(**kw) -> TraceBackedScenario:
    from repro.workload.ingest import swf_fixture_path

    ingest = kw.pop("ingest", IngestConfig(tick_seconds=120.0,
                                           target_load=0.75,
                                           max_parallelism_cap=8))
    return TraceBackedScenario.from_swf(swf_fixture_path(), ingest=ingest,
                                        platforms=[Platform("cpu", 16, 1.0),
                                                   Platform("gpu", 6, 1.0)],
                                        max_ticks=400, **kw)


def _columnar_fixture(**kw) -> TraceBackedScenario:
    from repro.workload.ingest import columnar_fixture_path
    from repro.workload.ingest.columnar import ALIBABA_LIKE_SPEC

    ingest = kw.pop("ingest", IngestConfig(tick_seconds=60.0,
                                           target_load=0.7,
                                           max_parallelism_cap=8))
    return TraceBackedScenario.from_columnar(
        columnar_fixture_path(), ALIBABA_LIKE_SPEC, ingest=ingest,
        platforms=[Platform("cpu", 16, 1.0), Platform("gpu", 6, 1.0)],
        max_ticks=400, **kw)


register_scenario("standard", _standard,
                  "canonical synthetic two-platform scenario")
register_scenario("quick", _quick,
                  "bench-sized synthetic scenario (16 CPU + 6 GPU)")
register_scenario("swf-fixture", _swf_fixture,
                  "bundled SWF archive trace, normalized to load 0.75")
register_scenario("columnar-fixture", _columnar_fixture,
                  "bundled columnar CSV trace, normalized to load 0.7")
