"""Experiment harness: scenarios, sweeps, tables, plots, persistence.

``repro.harness.experiments`` contains one entry point per table/figure
of the reconstructed evaluation (E1–E12, see DESIGN.md §4); the modules
under ``benchmarks/`` call these with bench-sized parameters and
``EXPERIMENTS.md`` records the measured shapes.
"""

from repro.harness.scenario import Scenario, standard_scenario
from repro.harness.library import (
    FixedTraceScenario,
    TraceBackedScenario,
    TraceWindowScenario,
    get_scenario,
    list_scenarios,
    plan_trace_windows,
    register_scenario,
)
from repro.harness.results import ResultStore, aggregate_rows
from repro.harness.tables import format_table, rows_to_csv
from repro.harness.plots import ascii_line_plot
from repro.harness.sweeps import evaluate_windowed, sweep_schedulers, sweep_windowed
from repro.harness.cache import ResultCache, fingerprint
from repro.harness.executor import (
    PoolBackend,
    QueueBackend,
    SerialBackend,
    available_cpus,
    execute_cells,
    make_backend,
    queue_worker_loop,
)
from repro.harness.leaderboard import (
    AgentSpec,
    LeaderboardResult,
    PolicyStore,
    StoredPolicyFactory,
    build_leaderboard,
)
from repro.harness.parallel import (
    BaselineFactory,
    CellFailure,
    EvalCell,
    run_cells,
)
from repro.harness.stats import (
    MeanCI,
    bootstrap_ci,
    paired_permutation_test,
    summarize,
)
from repro.harness import experiments

__all__ = [
    "Scenario", "standard_scenario",
    "TraceBackedScenario", "FixedTraceScenario",
    "register_scenario", "get_scenario", "list_scenarios",
    "TraceWindowScenario", "plan_trace_windows",
    "ResultStore", "aggregate_rows",
    "format_table", "rows_to_csv",
    "ascii_line_plot",
    "sweep_schedulers", "sweep_windowed", "evaluate_windowed",
    "ResultCache", "fingerprint",
    "SerialBackend", "PoolBackend", "QueueBackend",
    "available_cpus", "execute_cells", "make_backend", "queue_worker_loop",
    "AgentSpec", "LeaderboardResult", "PolicyStore", "StoredPolicyFactory",
    "build_leaderboard",
    "BaselineFactory", "CellFailure", "EvalCell", "run_cells",
    "MeanCI", "bootstrap_ci", "paired_permutation_test", "summarize",
    "experiments",
]
