"""Persistent on-disk cache of evaluation-cell results.

Every evaluation cell — one (scenario, scheduler, trace-seed) simulation
— is deterministic given its inputs, so its
:class:`~repro.sim.metrics.MetricsReport` can be cached across processes
and sessions. The cache key is a structural fingerprint of everything the
result depends on: the scenario specification (platforms, workload
classes, load, MDP config, engine), the scheduler's name and full
parameterization (for a DRL policy that includes the network weights),
the trace seed, and the tick budget. Any change to any of those inputs
changes the key, so stale entries are never returned — invalidation is
by construction, not by bookkeeping.

Entries are JSON files under a two-level directory fan-out
(``<root>/<key[:2]>/<key>.json``), written atomically (temp file +
``os.replace``) so concurrent writers — the sharded parallel runner of
:mod:`repro.harness.parallel` — can share one cache directory safely:
the worst case under a race is recomputing a cell, never corrupting one.
JSON round-trips Python floats exactly (``repr``-based), so a cache hit
reproduces the uncached result byte-for-byte.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import json
import os
import weakref
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.sim.metrics import MetricsReport, SegmentMetrics
from repro.util.io import atomic_write_json

__all__ = ["fingerprint", "ResultCache", "DEFAULT_CACHE_DIR",
           "encode_result", "decode_result"]

#: Default cache location for the CLI (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Cumulative counter file at the cache root (not an entry: entries live
#: in two-level subdirectories, so ``*/*.json`` globs never match it).
_STATS_NAME = "STATS.json"

#: Bump to invalidate every existing cache entry when the simulation or
#: metrics semantics change incompatibly.
_SCHEMA_VERSION = "1"


def _feed(h, obj: Any, seen: set) -> None:
    """Feed a canonical byte encoding of ``obj`` into hash ``h``.

    Handles the types that appear in scenario / scheduler specifications:
    scalars, containers (dict items sorted for order independence),
    dataclasses (declared fields only), NumPy arrays and generators
    (weights and seeded RNG state), callables (by qualified name), and —
    as the general fallback — arbitrary objects via their ``__dict__``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        h.update(f"{type(obj).__name__}:{obj!r};".encode())
        return
    if isinstance(obj, float):
        h.update(f"float:{obj!r};".encode())
        return
    if isinstance(obj, bytes):
        h.update(b"bytes:")
        h.update(obj)
        return
    if isinstance(obj, np.ndarray):
        h.update(f"ndarray:{obj.dtype!s}:{obj.shape!r}:".encode())
        h.update(np.ascontiguousarray(obj).tobytes())
        return
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        _feed(h, obj.item(), seen)
        return
    # Containers and objects can recurse; guard against cycles.
    oid = id(obj)
    if oid in seen:
        h.update(b"cycle;")
        return
    seen = seen | {oid}
    if isinstance(obj, dict):
        h.update(f"dict:{len(obj)}:".encode())
        for key in sorted(obj, key=repr):
            _feed(h, key, seen)
            _feed(h, obj[key], seen)
        return
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        h.update(f"{type(obj).__name__}:{len(items)}:".encode())
        for item in items:
            _feed(h, item, seen)
        return
    if isinstance(obj, np.random.Generator):
        _feed(h, obj.bit_generator.state, seen)
        return
    spec_fn = getattr(obj, "cache_spec", None)
    if callable(spec_fn) and not isinstance(obj, type):
        # The object declares its own canonical parameterization — the
        # inputs that determine its behavior, excluding mutable runtime
        # state (live RNG positions, memo caches) that would make
        # logically identical evaluations fingerprint differently.
        h.update(f"spec:{type(obj).__module__}.{type(obj).__qualname__}:".encode())
        _feed(h, spec_fn(), seen)
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(f"dc:{type(obj).__module__}.{type(obj).__qualname__}:".encode())
        for f in dataclasses.fields(obj):
            h.update(f.name.encode())
            _feed(h, getattr(obj, f.name), seen)
        return
    if isinstance(obj, type) or callable(obj) and hasattr(obj, "__qualname__"):
        mod = getattr(obj, "__module__", "?")
        h.update(f"callable:{mod}.{obj.__qualname__};".encode())
        if getattr(obj, "__dict__", None):  # parameterized callable object
            _feed(h, vars(obj), seen)
        return
    state = getattr(obj, "__dict__", None)
    if state is not None:
        h.update(f"obj:{type(obj).__module__}.{type(obj).__qualname__}:".encode())
        _feed(h, state, seen)
        return
    # Last resort: repr. Stable for the value types that reach here.
    h.update(f"repr:{obj!r};".encode())


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``.

    Structural and deterministic across processes and sessions (no
    ``id()``/``hash()`` randomization in the encoding), so the digest is
    a valid persistent cache key.
    """
    h = hashlib.sha256()
    h.update(f"v{_SCHEMA_VERSION};".encode())
    for part in parts:
        _feed(h, part, set())
    return h.hexdigest()


def _json_coerce(obj):
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def encode_result(result) -> Dict[str, Any]:
    """JSON payload for a cell result (whole-run report or segment).

    The same envelope is used by :class:`ResultCache` entries and by the
    queue backend's shared result store, so a result computed on another
    host decodes identically to a local cache hit.
    """
    if isinstance(result, SegmentMetrics):
        return {"kind": "segment", "segment": result.to_payload()}
    if isinstance(result, MetricsReport):
        return {"kind": "report", "report": dataclasses.asdict(result)}
    raise TypeError(f"not a cacheable cell result: {type(result).__name__}")


def decode_result(payload: Dict[str, Any]):
    """Inverse of :func:`encode_result`.

    Entries written before the envelope gained ``kind`` carry only a
    ``report`` key and decode as whole-run reports.
    """
    kind = payload.get("kind", "report")
    if kind == "segment":
        return SegmentMetrics.from_payload(payload["segment"])
    if kind == "report":
        return MetricsReport(**payload["report"])
    raise ValueError(f"unknown result kind: {kind!r}")


#: Live caches whose unflushed counter deltas should be folded into
#: STATS.json when the interpreter exits. A WeakSet so registration
#: never keeps a cache (or its directory handle) alive.
_LIVE_CACHES: "weakref.WeakSet" = weakref.WeakSet()


@atexit.register
def _flush_counters_at_exit() -> None:
    """Persist pending counter deltas of still-live caches.

    Callers that never reach an explicit :meth:`ResultCache.flush_counters`
    (workers that exit after a batch, interrupted sweeps) would otherwise
    silently drop their hit/miss history. Only caches with a nonzero
    delta write anything, and failures are swallowed — exit paths must
    not start raising over observability counters.
    """
    for cache in list(_LIVE_CACHES):
        try:
            if any(v != cache._flushed[k] for k, v in cache.stats.items()):
                cache.flush_counters()
        except Exception:
            pass


class ResultCache:
    """Directory-backed map from fingerprint keys to metrics reports.

    ``get``/``put`` are crash- and concurrency-safe: reads treat missing
    or corrupt entries as misses, writes are atomic renames. Hit/miss
    counters are kept per instance (``stats``) so callers can verify
    warm-cache behavior.

    ``max_bytes`` caps the cache's on-disk size: ``put`` evicts the
    least-recently-used entries (file mtime; refreshed on every ``get``
    hit) whenever a cheap running size estimate crosses the cap — so a
    long-lived cache directory no longer grows without bound as
    scenario fingerprints churn, without a full directory scan per
    write. Eviction is also available directly via :meth:`prune`.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR,
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Portion of the instance counters already folded into the
        # persistent STATS.json, so repeated flushes don't double-count.
        self._flushed = {"hits": 0, "misses": 0, "evictions": 0}
        # Running size estimate so capped puts don't stat the whole
        # directory each time; only drifts upward (overwrites double-
        # count), so it can trigger a spurious prune but never miss one.
        # prune() resets it to the exact post-eviction total.
        self._approx_bytes: Optional[int] = None
        _LIVE_CACHES.add(self)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str):
        """The cached result for ``key`` (report or segment), or ``None``."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            report = decode_result(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)          # refresh recency for LRU eviction
        except OSError:
            pass                    # entry may have raced away; still a hit
        return report

    def put(self, key: str, report) -> None:
        """Persist a cell result under ``key`` (atomic, last-writer-wins).

        When ``max_bytes`` is set, least-recently-used entries are
        evicted afterwards until the cache fits.
        """
        path = self._path(key)
        payload = encode_result(report)
        atomic_write_json(path, payload, default=_json_coerce)
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.size_bytes()
            else:
                try:
                    self._approx_bytes += path.stat().st_size
                except OSError:
                    pass
            if self._approx_bytes > self.max_bytes:
                self.prune(self.max_bytes)

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the cache fits.

        ``max_bytes`` defaults to the instance cap. Entries are ranked
        by file mtime (``get`` refreshes it, so recency is use, not
        write); ties break on path for determinism. Concurrent deletes
        are tolerated. Returns the number of entries evicted.
        """
        if max_bytes is None:
            max_bytes = self.max_bytes
        if max_bytes is None:
            raise ValueError("prune needs max_bytes (argument or instance cap)")
        entries = []
        total = 0
        for path in sorted(self.root.glob("*/*.json")):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, str(path), st.st_size, path))
            total += st.st_size
        if total <= max_bytes:
            self._approx_bytes = total
            return 0
        entries.sort(key=lambda e: (e[0], e[1]))
        removed = 0
        for _, _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue            # another process won the race
            total -= size
            removed += 1
        self.evictions += removed
        self._approx_bytes = total
        return removed

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        total = 0
        for path in sorted(self.root.glob("*/*.json")):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if self.root.is_dir():
            for path in sorted(self.root.glob("*/*.json")):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in sorted(self.root.glob("*/*.json")))

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    def counters(self) -> Dict[str, int]:
        """Cumulative hit/miss/eviction counters across all processes.

        Read from ``<root>/STATS.json``; a missing or corrupt file reads
        as all-zero (the cache itself never depends on these).
        """
        totals = {"hits": 0, "misses": 0, "evictions": 0}
        try:
            with open(self.root / _STATS_NAME, encoding="utf-8") as fh:
                payload = json.load(fh)
            for k in totals:
                totals[k] = int(payload.get(k, 0))
        except (OSError, ValueError, TypeError):
            pass
        return totals

    def flush_counters(self) -> Dict[str, int]:
        """Fold this instance's counter deltas into ``STATS.json``.

        Read-modify-write with an atomic replace: concurrent flushers
        can lose each other's delta but never corrupt the file —
        acceptable for observability counters. Returns the new totals.
        """
        delta = {k: v - self._flushed[k] for k, v in self.stats.items()}
        self._flushed = dict(self.stats)
        totals = self.counters()
        for k, v in delta.items():
            totals[k] += v
        atomic_write_json(self.root / _STATS_NAME, totals)
        return totals
