"""Scenario: the reusable bundle of cluster + workload every experiment uses."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import CoreConfig
from repro.core.scheduler_env import EpisodeFactory, SchedulerEnv
from repro.sim.job import Job
from repro.sim.platform import Platform
from repro.workload.classes import JobClass, default_job_classes
from repro.workload.generator import WorkloadConfig, generate_trace

__all__ = ["Scenario", "standard_scenario"]


@dataclass
class Scenario:
    """A fully-specified experimental setting.

    Bundles the heterogeneous platforms, the workload configuration, the
    target offered load, and the core-MDP sizing — everything needed to
    create paired traces and scheduler environments from seeds alone.
    """

    platforms: List[Platform]
    workload: WorkloadConfig
    load: float
    core: CoreConfig = field(default_factory=CoreConfig)
    max_ticks: int = 500
    engine: str = "tick"

    def __post_init__(self) -> None:
        if self.engine not in ("tick", "event"):
            raise ValueError(f"engine must be 'tick' or 'event', got {self.engine!r}")

    def with_load(self, load: float) -> "Scenario":
        """Same scenario at a different offered load."""
        return replace(self, load=load)

    def with_engine(self, engine: str) -> "Scenario":
        """Same scenario driven by a different simulation engine.

        ``"event"`` selects the event-driven kernel
        (:mod:`repro.sim.kernel`). Evaluation sweeps are bit-identical
        across engines. For RL *training* the event engine macro-steps
        fully idle stretches: episode returns and metrics are unchanged
        (idle ticks are worth exactly zero reward), but a stochastic
        policy sees fewer forced-noop decisions, so its RNG stream — and
        hence the exact trained weights for a given seed — differs from
        the tick engine.
        """
        return replace(self, engine=engine)

    def with_tightness(self, scale: float) -> "Scenario":
        """Same scenario with deadlines scaled by ``scale`` (E4's dial)."""
        wl = replace(self.workload, tightness_scale=scale)
        return replace(self, workload=wl)

    def with_core(self, core: CoreConfig) -> "Scenario":
        """Same scenario with a different MDP configuration."""
        return replace(self, core=core)

    def fingerprint(self) -> str:
        """Structural digest of the full scenario spec.

        Two scenarios share a fingerprint iff every field that influences
        an evaluation result (platforms, workload classes, load, MDP
        config, tick budget, engine) is identical — the scenario part of
        the persistent result-cache key (:mod:`repro.harness.cache`).
        """
        from repro.harness.cache import fingerprint

        return fingerprint(self)

    def evaluate(self, policy, traces: Optional[Sequence[List[Job]]] = None,
                 n_traces: int = 3, base_seed: int = 1000,
                 workers: int = 1):
        """Evaluate ``policy`` on this scenario's paired traces.

        Thin wrapper over :func:`repro.core.training.evaluate_scheduler`
        that supplies the scenario's platforms, tick budget, and engine;
        ``workers > 1`` shards the traces over a process pool. Explicit
        ``traces`` override the seeded ones.
        """
        from repro.core.training import evaluate_scheduler

        if traces is None:
            traces = self.traces(n_traces, base_seed=base_seed)
        return evaluate_scheduler(policy, self.platforms, traces,
                                  max_ticks=self.max_ticks,
                                  engine=self.engine, workers=workers)

    def trace(self, seed: int) -> List[Job]:
        """One reproducible trace for this scenario."""
        rng = np.random.default_rng(seed)
        return generate_trace(self.workload, self.platforms, rng, load=self.load)

    def traces(self, n: int, base_seed: int = 1000) -> List[List[Job]]:
        """``n`` paired traces (same seeds across schedulers)."""
        return [self.trace(base_seed + i) for i in range(n)]

    def train_env(self, seed: int = 0, work_scale: float = 25.0) -> SchedulerEnv:
        """A sampling-mode environment for policy training."""
        def factory(rng: np.random.Generator) -> List[Job]:
            return generate_trace(self.workload, self.platforms, rng, load=self.load)

        return SchedulerEnv(
            EpisodeFactory(self.platforms, trace_factory=factory),
            config=self.core,
            max_ticks=self.max_ticks,
            seed=seed,
            work_scale=work_scale,
            engine=self.engine,
        )

    def eval_env(self, traces: Sequence[List[Job]], seed: int = 0,
                 work_scale: float = 25.0) -> SchedulerEnv:
        """A replay-mode environment cycling over fixed traces."""
        return SchedulerEnv(
            EpisodeFactory(self.platforms, fixed_traces=list(traces)),
            config=self.core,
            max_ticks=self.max_ticks,
            seed=seed,
            work_scale=work_scale,
            engine=self.engine,
        )


def standard_scenario(
    load: float = 0.7,
    horizon: int = 60,
    tightness_scale: float = 1.0,
    cpu_capacity: int = 24,
    gpu_capacity: int = 8,
    classes: Optional[Sequence[JobClass]] = None,
    core: Optional[CoreConfig] = None,
    max_ticks: int = 500,
    engine: str = "tick",
) -> Scenario:
    """The canonical two-platform scenario of the experiment suite.

    CPU-heavy pool plus a scarce, fast accelerator pool; the default
    4-class workload mix (see :func:`repro.workload.default_job_classes`).
    """
    platforms = [Platform("cpu", cpu_capacity, 1.0), Platform("gpu", gpu_capacity, 1.0)]
    workload = WorkloadConfig(
        classes=list(classes) if classes is not None else default_job_classes(),
        horizon=horizon,
        tightness_scale=tightness_scale,
    )
    return Scenario(
        platforms=platforms,
        workload=workload,
        load=load,
        core=core if core is not None else CoreConfig(),
        max_ticks=max_ticks,
        engine=engine,
    )
