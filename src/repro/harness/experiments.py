"""One entry point per reconstructed table/figure (E1–E12; DESIGN.md §4).

Every function is size-parameterized: the defaults here are *bench-sized*
(the whole suite completes offline in minutes); EXPERIMENTS.md records
runs at these sizes plus, where noted, larger training budgets. Each
returns an :class:`ExperimentOutput` whose ``text`` field holds the
rendered table/figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    EDFScheduler,
    GreedyElasticScheduler,
    TetrisScheduler,
    baseline_roster,
)
from repro.core import (
    CoreConfig,
    DRLScheduler,
    RewardWeights,
    evaluate_scheduler,
    train_scheduler,
)
from repro.harness.plots import ascii_line_plot
from repro.harness.results import Row
from repro.harness.scenario import Scenario, standard_scenario
from repro.harness.tables import format_table
from repro.rl import PPOConfig
from repro.sim.metrics import MetricsReport
from repro.sim.simulation import Simulation, SimulationConfig
from repro.workload.classes import default_job_classes

__all__ = [
    "ExperimentOutput",
    "DEFAULT_REWARD", "quick_core", "quick_scenario", "train_drl",
    "e01_training_curve", "e02_main_table", "e03_load_sweep",
    "e04_tightness_sweep", "e05_elasticity_ablation", "e06_heterogeneity",
    "e07_utilization_timeline", "e08_reward_ablation", "e09_generalization",
    "e10_scalability", "e11_speedup_sensitivity", "e12_algorithms",
    "e13_fault_robustness", "e14_energy", "e15_dag_workloads",
    "e16_extended_baselines", "e17_learned_admission", "e18_leaderboard",
]

#: Reward weights used throughout the suite: the miss term dominates (the
#: time-critical objective), slowdown/tardiness shape, utilization
#: tie-breaks. Magnitudes are scaled so episode returns stay O(100) —
#: value-function conditioning, not objective choice.
DEFAULT_REWARD = RewardWeights(slowdown=0.05, miss=1.0, tardiness=0.05,
                               utilization=0.005)


@dataclass
class ExperimentOutput:
    """Uniform result bundle for one experiment."""

    name: str
    rows: List[Row] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    text: str = ""
    elapsed_s: float = 0.0

    def metric_by(self, key_col: str, key, metric: str) -> float:
        """Lookup: the ``metric`` of the first row where ``key_col == key``."""
        for row in self.rows:
            if row.get(key_col) == key:
                return float(row[metric])
        raise KeyError(f"no row with {key_col}={key!r}")


def quick_core(reward: Optional[RewardWeights] = None, elastic: bool = True,
               reject: bool = False) -> CoreConfig:
    """Bench-sized MDP config (6 queue/running slots, H=12)."""
    return CoreConfig(
        queue_slots=6,
        running_slots=6 if elastic else 0,
        horizon=12,
        actions_per_tick=6,
        elastic_actions=elastic,
        reject_actions=reject,
        reward=reward if reward is not None else DEFAULT_REWARD,
    )


def quick_scenario(
    load: float = 0.7,
    tightness: float = 1.0,
    reward: Optional[RewardWeights] = None,
    elastic: bool = True,
    rigid_jobs: bool = False,
    reject: bool = False,
) -> Scenario:
    """Bench-sized scenario (16 CPU + 6 GPU units, 40-tick arrival window)."""
    return standard_scenario(
        load=load,
        horizon=40,
        tightness_scale=tightness,
        cpu_capacity=16,
        gpu_capacity=6,
        classes=default_job_classes(rigid=rigid_jobs),
        core=quick_core(reward, elastic, reject),
        max_ticks=250,
    )


def _ppo_config(warm_start: bool = True) -> PPOConfig:
    """PPO hyperparameters: gentle steps for fine-tuning a cloned policy,
    larger steps when training from scratch."""
    if warm_start:
        return PPOConfig(lr=1e-4, value_lr=1e-3, entropy_coef=0.003,
                         minibatch_size=128, epochs=4, hidden=(128, 128),
                         clip_eps=0.1, target_kl=0.02)
    return PPOConfig(lr=3e-4, value_lr=1e-3, entropy_coef=0.01,
                     minibatch_size=128, epochs=4, hidden=(128, 128))


def train_drl(
    scenario: Scenario,
    iterations: int = 60,
    seed: int = 0,
    algo: str = "ppo",
    n_train_traces: int = 8,
    train_seed_base: int = 500,
    algo_config=None,
    warm_start: bool = True,
    n_val_traces: int = 3,
    val_seed_base: int = 700,
    num_envs: int = 1,
) -> DRLScheduler:
    """Train a policy on fixed traces of ``scenario`` (DeepRM recipe).

    Three disjoint seed ranges: training traces (variance reducer),
    validation traces (best-checkpoint selection), and — supplied by the
    caller — evaluation traces. By default the policy is behavior-cloned
    from the elastic teacher before PPO fine-tuning
    (:mod:`repro.core.imitation`).

    ``num_envs > 1`` collects each iteration's episodes through a
    :class:`~repro.rl.vec_env.VecEnv` (batched lockstep rollouts).
    """
    train_traces = scenario.traces(n_train_traces, base_seed=train_seed_base)
    val_traces = scenario.traces(n_val_traces, base_seed=val_seed_base)
    env = scenario.eval_env(train_traces, seed=seed)
    if algo_config is None and algo == "ppo":
        algo_config = _ppo_config(warm_start)
    result = train_scheduler(
        env, algo=algo, iterations=iterations, episodes_per_iter=4,
        algo_config=algo_config, seed=seed, warm_start=warm_start,
        val_traces=val_traces, eval_every=10, num_envs=num_envs,
    )
    if result.scheduler is None:
        raise ValueError(f"algo {algo!r} does not yield a DRLScheduler")
    return result.scheduler


def _resolve_scenario_arg(scenario) -> Scenario:
    """A ``scenario`` experiment argument -> a concrete :class:`Scenario`.

    Accepts a ready-made instance or a name/path for the registry of
    :mod:`repro.harness.library` (``swf-fixture``, an imported trace
    container path, …) — the hook that runs the e-series experiments on
    real-trace scenarios.
    """
    if isinstance(scenario, Scenario):
        return scenario
    from repro.harness.library import get_scenario

    return get_scenario(str(scenario))


def _mean_metrics(reports: Sequence[MetricsReport]) -> Dict[str, float]:
    return {
        "miss_rate": float(np.mean([r.miss_rate for r in reports])),
        "mean_slowdown": float(np.mean([r.mean_slowdown for r in reports])),
        "mean_tardiness": float(np.mean([r.mean_tardiness for r in reports])),
        "mean_utilization": float(np.mean([r.mean_utilization for r in reports])),
    }


# ---------------------------------------------------------------------------
# E1 — training curve (figure)
# ---------------------------------------------------------------------------
def e01_training_curve(
    iterations: int = 60,
    eval_every: int = 15,
    seed: int = 0,
    load: float = 0.7,
    n_eval_traces: int = 3,
) -> ExperimentOutput:
    """Policy return and deadline-miss rate over training iterations."""
    t0 = time.time()
    scenario = quick_scenario(load=load)
    train_traces = scenario.traces(8, base_seed=500)
    env = scenario.eval_env(train_traces, seed=seed)
    eval_traces = scenario.traces(n_eval_traces)

    from repro.rl import PPOAgent  # local import keeps module load cheap

    agent = PPOAgent(env.encoder.obs_dim, env.actions.n, _ppo_config(),
                     np.random.default_rng(seed))
    rows: List[Row] = []
    returns: List[float] = []
    misses: List[float] = []
    done_iters = 0
    while done_iters < iterations:
        chunk = min(eval_every, iterations - done_iters)
        history = agent.train(env, iterations=chunk, episodes_per_iter=4,
                              max_steps=10_000)
        done_iters += chunk
        mean_ret = float(np.mean([h["episode_return"] for h in history]))
        sched = DRLScheduler(agent.policy, env.config,
                             [p.name for p in scenario.platforms], greedy=True)
        reports = evaluate_scheduler(sched, scenario.platforms, eval_traces,
                                     max_ticks=scenario.max_ticks)
        miss = float(np.mean([r.miss_rate for r in reports]))
        returns.append(mean_ret)
        misses.append(miss)
        rows.append({"iteration": done_iters, "episode_return": mean_ret,
                     "miss_rate": miss})
    text = format_table(rows, title="E1: PPO training curve") + "\n\n" + ascii_line_plot(
        {"return": returns}, title="E1: episode return vs training",
        x_label="iteration", y_label="return")
    return ExperimentOutput("e01_training_curve", rows,
                            {"return": returns, "miss_rate": misses},
                            text, time.time() - t0)


# ---------------------------------------------------------------------------
# E2 — main comparison table
# ---------------------------------------------------------------------------
def e02_main_table(
    train_iterations: int = 120,
    n_traces: int = 4,
    load: float = 0.7,
    seed: int = 0,
    include_drl: bool = True,
    workers: int = 1,
    scenario=None,
) -> ExperimentOutput:
    """Deadline miss rate / slowdown: DRL vs the full heuristic roster.

    ``scenario`` (a registry name, trace-container path, or
    :class:`Scenario`) runs the comparison on a real-trace scenario
    instead of the synthetic quick scenario at ``load``.
    """
    t0 = time.time()
    named = scenario is not None
    scenario = _resolve_scenario_arg(scenario) if named \
        else quick_scenario(load=load)
    traces = scenario.traces(n_traces)
    rows: List[Row] = []
    schedulers: Dict[str, object] = dict(baseline_roster())
    if include_drl:
        schedulers["drl"] = train_drl(scenario, iterations=train_iterations, seed=seed)
    for name, sched in schedulers.items():
        reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                     max_ticks=scenario.max_ticks,
                                     workers=workers)
        rows.append({"scheduler": name, **_mean_metrics(reports)})
    rows.sort(key=lambda r: r["miss_rate"])
    what = getattr(scenario, "source", "") or f"load={load}" if named \
        else f"load={load}"
    text = format_table(rows, title=f"E2: main comparison ({what})")
    return ExperimentOutput("e02_main_table", rows, {}, text, time.time() - t0)


# ---------------------------------------------------------------------------
# E3 — miss rate vs offered load (figure)
# ---------------------------------------------------------------------------
def e03_load_sweep(
    loads: Sequence[float] = (0.4, 0.7, 1.0, 1.3),
    n_traces: int = 3,
    schedulers: Optional[Dict[str, object]] = None,
    drl: Optional[DRLScheduler] = None,
    workers: int = 1,
    scenario=None,
) -> ExperimentOutput:
    """Sweep offered load; every scheduler rises, ranking should persist.

    ``scenario`` selects the scenario to sweep (registry name, path, or
    instance): trace-backed scenarios re-normalize their archive to
    each swept load via ``with_target_load`` — the real-trace version
    of the paper's load axis — and synthetic scenarios re-dial via
    ``with_load``. Pinned-trace scenarios replay the same jobs at every
    seed, so a load sweep would relabel identical runs; they are
    rejected.
    """
    t0 = time.time()
    dial = None
    if scenario is not None:
        base = _resolve_scenario_arg(scenario)
        if hasattr(base, "with_target_load"):
            dial = base.with_target_load
        else:
            from repro.harness.library import FixedTraceScenario

            if isinstance(base, FixedTraceScenario):
                raise ValueError(
                    f"scenario {base.source!r} cannot sweep load: its "
                    "pinned trace replays verbatim at every load (no "
                    "with_target_load); use a trace-backed (archive) or "
                    "synthetic scenario")
            dial = base.with_load
    if schedulers is None:
        schedulers = {
            "edf": EDFScheduler(),
            "tetris": TetrisScheduler(),
            "greedy-elastic": GreedyElasticScheduler(),
            "fifo": baseline_roster()["fifo"],
        }
    if drl is not None:
        schedulers = {**schedulers, "drl": drl}
    rows: List[Row] = []
    series: Dict[str, List[float]] = {name: [] for name in schedulers}
    for load in loads:
        scenario = dial(load) if dial is not None \
            else quick_scenario(load=load)
        traces = scenario.traces(n_traces)
        for name, sched in schedulers.items():
            reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                         max_ticks=scenario.max_ticks,
                                         workers=workers)
            metrics = _mean_metrics(reports)
            rows.append({"load": load, "scheduler": name, **metrics})
            series[name].append(metrics["miss_rate"])
    text = format_table(rows, title="E3: miss rate vs offered load") + "\n\n" + \
        ascii_line_plot(series, title="E3: miss rate vs load",
                        x_label="load", y_label="miss rate")
    return ExperimentOutput("e03_load_sweep", rows, series, text, time.time() - t0)


# ---------------------------------------------------------------------------
# E4 — miss rate vs deadline tightness (figure)
# ---------------------------------------------------------------------------
def e04_tightness_sweep(
    scales: Sequence[float] = (0.7, 1.0, 1.5, 2.5),
    load: float = 0.8,
    n_traces: int = 3,
    drl: Optional[DRLScheduler] = None,
    workers: int = 1,
) -> ExperimentOutput:
    """Sweep the deadline tightness multiplier (smaller = tighter)."""
    t0 = time.time()
    schedulers: Dict[str, object] = {
        "edf": EDFScheduler(),
        "greedy-elastic": GreedyElasticScheduler(),
        "fifo": baseline_roster()["fifo"],
    }
    if drl is not None:
        schedulers["drl"] = drl
    rows: List[Row] = []
    series: Dict[str, List[float]] = {name: [] for name in schedulers}
    for scale in scales:
        scenario = quick_scenario(load=load, tightness=scale)
        traces = scenario.traces(n_traces)
        for name, sched in schedulers.items():
            reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                         max_ticks=scenario.max_ticks,
                                         workers=workers)
            metrics = _mean_metrics(reports)
            rows.append({"tightness": scale, "scheduler": name, **metrics})
            series[name].append(metrics["miss_rate"])
    text = format_table(rows, title="E4: miss rate vs deadline tightness") + \
        "\n\n" + ascii_line_plot(series, title="E4: miss vs tightness",
                                 x_label="tightness scale", y_label="miss rate")
    return ExperimentOutput("e04_tightness_sweep", rows, series, text,
                            time.time() - t0)


# ---------------------------------------------------------------------------
# E5 — elasticity ablation (table)
# ---------------------------------------------------------------------------
def e05_elasticity_ablation(
    loads: Sequence[float] = (0.6, 0.9),
    train_iterations: int = 80,
    n_traces: int = 3,
    seed: int = 0,
    include_drl: bool = True,
) -> ExperimentOutput:
    """Elastic vs rigid resource management of the same malleable workload.

    Rigid variants: DRL without grow/shrink actions, EDF admitting at the
    job *minimum* (never adapting), vs their elastic counterparts.
    """
    t0 = time.time()
    rows: List[Row] = []
    for load in loads:
        scenario_elastic = quick_scenario(load=load, elastic=True)
        scenario_rigid = quick_scenario(load=load, elastic=False)
        traces = scenario_elastic.traces(n_traces)
        pairs: List[Tuple[str, object, Scenario]] = [
            ("edf-rigid(min)", EDFScheduler(parallelism="min"), scenario_rigid),
            ("edf-fit", EDFScheduler(parallelism="fit"), scenario_elastic),
            ("greedy-elastic", GreedyElasticScheduler(), scenario_elastic),
        ]
        if include_drl:
            pairs.append(("drl-rigid", train_drl(scenario_rigid,
                                                 iterations=train_iterations,
                                                 seed=seed), scenario_rigid))
            pairs.append(("drl-elastic", train_drl(scenario_elastic,
                                                   iterations=train_iterations,
                                                   seed=seed), scenario_elastic))
        for name, sched, scen in pairs:
            reports = evaluate_scheduler(sched, scen.platforms, traces,
                                         max_ticks=scen.max_ticks)
            rows.append({"load": load, "variant": name, **_mean_metrics(reports)})
    text = format_table(rows, title="E5: elasticity ablation")
    return ExperimentOutput("e05_elasticity_ablation", rows, {}, text,
                            time.time() - t0)


# ---------------------------------------------------------------------------
# E6 — heterogeneity awareness (table)
# ---------------------------------------------------------------------------
def e06_heterogeneity(
    load: float = 0.7,
    n_traces: int = 4,
    drl: Optional[DRLScheduler] = None,
    workers: int = 1,
) -> ExperimentOutput:
    """Affinity-aware vs heterogeneity-blind placement."""
    t0 = time.time()
    scenario = quick_scenario(load=load)
    traces = scenario.traces(n_traces)
    schedulers: Dict[str, object] = {
        "edf-aware": EDFScheduler(platform_choice="best"),
        "edf-blind": EDFScheduler(platform_choice="blind"),
        "tetris-aware": TetrisScheduler(platform_choice="best"),
        "greedy-elastic-aware": GreedyElasticScheduler(platform_choice="best"),
        "greedy-elastic-blind": GreedyElasticScheduler(platform_choice="blind"),
    }
    if drl is not None:
        schedulers["drl"] = drl
    rows: List[Row] = []
    for name, sched in schedulers.items():
        reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                     max_ticks=scenario.max_ticks,
                                     workers=workers)
        rows.append({"scheduler": name, **_mean_metrics(reports)})
    text = format_table(rows, title="E6: heterogeneity awareness")
    return ExperimentOutput("e06_heterogeneity", rows, {}, text, time.time() - t0)


# ---------------------------------------------------------------------------
# E7 — utilization timeline (figure)
# ---------------------------------------------------------------------------
def e07_utilization_timeline(
    load: float = 0.9,
    trace_seed: int = 1000,
    drl: Optional[DRLScheduler] = None,
) -> ExperimentOutput:
    """Per-tick cluster utilization under competing schedulers, one trace."""
    t0 = time.time()
    scenario = quick_scenario(load=load)
    series: Dict[str, List[float]] = {}
    rows: List[Row] = []
    schedulers: Dict[str, object] = {
        "edf": EDFScheduler(),
        "greedy-elastic": GreedyElasticScheduler(),
    }
    if drl is not None:
        schedulers["drl"] = drl
    for name, sched in schedulers.items():
        jobs = scenario.trace(trace_seed)   # fresh Job objects per scheduler
        sim = Simulation(scenario.platforms, jobs,
                         SimulationConfig(horizon=scenario.max_ticks))
        report = sim.run_policy(sched, max_ticks=scenario.max_ticks)
        series[name] = list(sim.utilization_series)
        rows.append({"scheduler": name, "mean_utilization": report.mean_utilization,
                     "miss_rate": report.miss_rate})
    text = format_table(rows, title="E7: utilization summary") + "\n\n" + \
        ascii_line_plot(series, title="E7: utilization timeline",
                        x_label="tick", y_label="utilization")
    return ExperimentOutput("e07_utilization_timeline", rows, series, text,
                            time.time() - t0)


# ---------------------------------------------------------------------------
# E8 — reward ablation (table)
# ---------------------------------------------------------------------------
def e08_reward_ablation(
    train_iterations: int = 60,
    load: float = 0.9,
    n_traces: int = 3,
    seed: int = 0,
    variants: Optional[Dict[str, RewardWeights]] = None,
) -> ExperimentOutput:
    """Train one policy per reward variant; compare deadline outcomes."""
    t0 = time.time()
    if variants is None:
        variants = {
            "slowdown-only": RewardWeights(slowdown=0.05, miss=0.0,
                                           tardiness=0.0, utilization=0.0),
            "+miss": RewardWeights(slowdown=0.05, miss=1.0, tardiness=0.0,
                                   utilization=0.0),
            "+miss+tardy": RewardWeights(slowdown=0.05, miss=1.0,
                                         tardiness=0.05, utilization=0.0),
            "full": DEFAULT_REWARD,
        }
    rows: List[Row] = []
    for name, weights in variants.items():
        scenario = quick_scenario(load=load, reward=weights)
        traces = scenario.traces(n_traces)
        sched = train_drl(scenario, iterations=train_iterations, seed=seed)
        reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                     max_ticks=scenario.max_ticks)
        rows.append({"reward": name, **_mean_metrics(reports)})
    text = format_table(rows, title="E8: reward-component ablation")
    return ExperimentOutput("e08_reward_ablation", rows, {}, text, time.time() - t0)


# ---------------------------------------------------------------------------
# E9 — generalization across loads (figure)
# ---------------------------------------------------------------------------
def e09_generalization(
    train_load: float = 0.7,
    eval_loads: Sequence[float] = (0.5, 0.7, 1.0),
    train_iterations: int = 100,
    n_traces: int = 3,
    seed: int = 0,
) -> ExperimentOutput:
    """Train at one load; evaluate on unseen loads and trace seeds."""
    t0 = time.time()
    train_scenario = quick_scenario(load=train_load)
    drl = train_drl(train_scenario, iterations=train_iterations, seed=seed)
    rows: List[Row] = []
    series: Dict[str, List[float]] = {"drl": [], "edf": []}
    for load in eval_loads:
        scenario = quick_scenario(load=load)
        traces = scenario.traces(n_traces, base_seed=3000)   # unseen seeds
        for name, sched in [("drl", drl), ("edf", EDFScheduler())]:
            reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                         max_ticks=scenario.max_ticks)
            metrics = _mean_metrics(reports)
            rows.append({"eval_load": load, "scheduler": name, **metrics})
            series[name].append(metrics["miss_rate"])
    text = format_table(rows, title=f"E9: generalization (trained at {train_load})")
    return ExperimentOutput("e09_generalization", rows, series, text,
                            time.time() - t0)


# ---------------------------------------------------------------------------
# E10 — scalability (table)
# ---------------------------------------------------------------------------
def e10_scalability(
    sizes: Sequence[Tuple[int, int]] = ((16, 4), (32, 8), (64, 16), (128, 32)),
    load: float = 0.7,
    repeats: int = 50,
) -> ExperimentOutput:
    """Decision latency and simulator throughput vs cluster size.

    Measures (a) state-encode + mask + policy-forward time per decision,
    (b) simulator ticks/second under EDF, as the cluster grows.
    """
    t0 = time.time()
    rows: List[Row] = []
    from repro.rl.policies import CategoricalPolicy

    for cpu_cap, gpu_cap in sizes:
        scenario = standard_scenario(load=load, horizon=30, cpu_capacity=cpu_cap,
                                     gpu_capacity=gpu_cap, core=quick_core(),
                                     max_ticks=200)
        trace = scenario.trace(1000)
        env = scenario.eval_env([trace], seed=0)
        # Microbenchmark: the fixed seed pins the (untrained) weights and
        # action draws so repeated timing runs measure the same compute.
        policy = CategoricalPolicy.for_sizes(
            env.encoder.obs_dim, env.actions.n, (128, 128),
            np.random.default_rng(0))  # repro: allow[DET001]
        obs = env.reset()
        rng = np.random.default_rng(0)  # repro: allow[DET001]
        start = time.perf_counter()
        for _ in range(repeats):
            mask = env.action_mask()
            env.encoder.encode(env.sim)
            policy.act(obs, rng, mask=mask, greedy=True)
        decision_us = (time.perf_counter() - start) / repeats * 1e6

        sim = Simulation(scenario.platforms, scenario.trace(1000),
                         SimulationConfig(horizon=2000))
        sched = EDFScheduler()
        start = time.perf_counter()
        ticks = 0
        while not sim.is_done() and ticks < 2000:
            sched.schedule(sim)
            sim.advance_tick()
            ticks += 1
        ticks_per_s = ticks / max(time.perf_counter() - start, 1e-9)
        rows.append({
            "cluster_units": cpu_cap + gpu_cap,
            "obs_dim": env.encoder.obs_dim,
            "n_actions": env.actions.n,
            "decision_us": decision_us,
            "sim_ticks_per_s": ticks_per_s,
        })
    text = format_table(rows, title="E10: scalability", precision=1)
    return ExperimentOutput("e10_scalability", rows, {}, text, time.time() - t0)


# ---------------------------------------------------------------------------
# E11 — speedup-model sensitivity (figure)
# ---------------------------------------------------------------------------
def e11_speedup_sensitivity(
    sigmas: Sequence[float] = (0.0, 0.1, 0.3, 0.5),
    load: float = 0.8,
    n_traces: int = 3,
) -> ExperimentOutput:
    """Elastic advantage vs Amdahl serial fraction.

    As sigma grows, extra units buy less progress, so the gap between the
    elastic heuristic and rigid-min EDF should shrink.
    """
    t0 = time.time()
    rows: List[Row] = []
    series: Dict[str, List[float]] = {"edf-rigid(min)": [], "greedy-elastic": [],
                                      "advantage": []}
    from dataclasses import replace

    for sigma in sigmas:
        classes = [replace(c, serial_fraction=sigma) for c in default_job_classes()]
        scenario = standard_scenario(
            load=load, horizon=40, cpu_capacity=16, gpu_capacity=6,
            classes=classes, core=quick_core(), max_ticks=250)
        traces = scenario.traces(n_traces)
        miss = {}
        for name, sched in [("edf-rigid(min)", EDFScheduler(parallelism="min")),
                            ("greedy-elastic", GreedyElasticScheduler())]:
            reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                         max_ticks=scenario.max_ticks)
            metrics = _mean_metrics(reports)
            miss[name] = metrics["miss_rate"]
            rows.append({"sigma": sigma, "scheduler": name, **metrics})
            series[name].append(metrics["miss_rate"])
        series["advantage"].append(miss["edf-rigid(min)"] - miss["greedy-elastic"])
    text = format_table(rows, title="E11: Amdahl-sigma sensitivity") + "\n\n" + \
        ascii_line_plot(series, title="E11: elastic advantage vs serial fraction",
                        x_label="sigma", y_label="miss rate / advantage")
    return ExperimentOutput("e11_speedup_sensitivity", rows, series, text,
                            time.time() - t0)


# ---------------------------------------------------------------------------
# E12 — RL algorithm comparison (table)
# ---------------------------------------------------------------------------
def e12_algorithms(
    algos: Sequence[str] = ("reinforce", "a2c", "ppo", "dqn", "dqn-rainbow"),
    iterations: int = 40,
    load: float = 0.7,
    seed: int = 0,
) -> ExperimentOutput:
    """Final return per algorithm under an equal iteration budget.

    All algorithms are compared on training-environment return (the
    common currency; no warm start, so the comparison is of the RL
    algorithms themselves); policy-gradient algorithms additionally get a
    greedy-decode miss rate. ``dqn-rainbow`` is DQN with the double +
    dueling + prioritized-replay extensions enabled, ablating whether
    the Rainbow-lineage tricks rescue value-based learning on this
    action space.
    """
    t0 = time.time()
    scenario = quick_scenario(load=load)
    train_traces = scenario.traces(8, base_seed=500)
    eval_traces = scenario.traces(3)
    rows: List[Row] = []
    from repro.rl import A2CConfig, DQNConfig, ReinforceConfig

    algo_configs = {
        "reinforce": ReinforceConfig(hidden=(64, 64)),
        "a2c": A2CConfig(hidden=(64, 64)),
        "ppo": PPOConfig(hidden=(64, 64), minibatch_size=128),
        # train_every=4 keeps DQN's per-step gradient cost comparable to
        # the on-policy agents' per-iteration cost in this comparison.
        "dqn": DQNConfig(hidden=(64, 64), train_every=4, batch_size=32,
                         warmup_steps=300, epsilon_decay_steps=4000),
        "dqn-rainbow": DQNConfig(hidden=(64, 64), train_every=4, batch_size=32,
                                 warmup_steps=300, epsilon_decay_steps=4000,
                                 double_dqn=True, dueling=True,
                                 prioritized=True),
    }
    for algo in algos:
        base_algo = "dqn" if algo.startswith("dqn") else algo
        env = scenario.eval_env(train_traces, seed=seed)
        result = train_scheduler(env, algo=base_algo, iterations=iterations,
                                 episodes_per_iter=4, seed=seed,
                                 algo_config=algo_configs.get(algo),
                                 warm_start=False)
        returns = result.returns()
        tail = float(np.mean(returns[-max(len(returns) // 5, 1):]))
        head = float(np.mean(returns[:max(len(returns) // 5, 1)]))
        row: Row = {"algo": algo, "first_return": head, "final_return": tail,
                    "improvement": tail - head}
        if result.scheduler is not None:
            reports = evaluate_scheduler(result.scheduler, scenario.platforms,
                                         eval_traces, max_ticks=scenario.max_ticks)
            row["miss_rate"] = float(np.mean([r.miss_rate for r in reports]))
        rows.append(row)
    text = format_table(rows, title="E12: RL algorithm comparison", precision=2)
    return ExperimentOutput("e12_algorithms", rows, {}, text, time.time() - t0)


# ---------------------------------------------------------------------------
# E13 — robustness under machine faults (table/figure)
# ---------------------------------------------------------------------------
def e13_fault_robustness(
    mtbfs: Sequence[float] = (float("inf"), 60.0, 25.0, 10.0),
    mttr: float = 8.0,
    load: float = 0.7,
    n_traces: int = 3,
    drl: Optional[DRLScheduler] = None,
) -> ExperimentOutput:
    """Miss rate vs fault pressure (decreasing unit MTBF).

    Fault traces are paired across schedulers (same injector seed per
    trace index), so differences come from scheduling decisions, not
    fault luck. Expected shape: all schedulers degrade as MTBF drops;
    elasticity-compatible policies degrade most gracefully because they
    re-pack preempted work into the shrunken cluster.
    """
    from repro.core import evaluate_scheduler_runs
    from repro.sim.faults import FaultModel

    t0 = time.time()
    scenario = quick_scenario(load=load)
    traces = scenario.traces(n_traces)
    schedulers: Dict[str, object] = {
        "edf": EDFScheduler(),
        "greedy-elastic": GreedyElasticScheduler(),
        "fifo": baseline_roster()["fifo"],
    }
    if drl is not None:
        schedulers["drl"] = drl
    rows: List[Row] = []
    series: Dict[str, List[float]] = {name: [] for name in schedulers}
    for mtbf in mtbfs:
        models = (
            None if np.isinf(mtbf)
            else {p.name: FaultModel(mtbf=mtbf, mttr=mttr) for p in scenario.platforms}
        )
        for name, sched in schedulers.items():
            sims = evaluate_scheduler_runs(
                sched, scenario.platforms, traces, max_ticks=scenario.max_ticks,
                fault_models=models,
            )
            reports = [s.metrics() for s in sims]
            metrics = _mean_metrics(reports)
            preempts = float(np.mean([
                s.fault_injector.stats.preemptions if s.fault_injector else 0
                for s in sims
            ]))
            label = "inf" if np.isinf(mtbf) else mtbf
            rows.append({"mtbf": label, "scheduler": name,
                         "preemptions": preempts, **metrics})
            series[name].append(metrics["miss_rate"])
    text = format_table(rows, title=f"E13: robustness vs unit MTBF (mttr={mttr})") \
        + "\n\n" + ascii_line_plot(
            series, title="E13: miss rate vs fault pressure (left=no faults)",
            x_label="fault level", y_label="miss rate")
    return ExperimentOutput("e13_fault_robustness", rows, series, text,
                            time.time() - t0)


# ---------------------------------------------------------------------------
# E14 — energy accounting (table)
# ---------------------------------------------------------------------------
def e14_energy(
    load: float = 0.7,
    n_traces: int = 3,
    drl: Optional[DRLScheduler] = None,
) -> ExperimentOutput:
    """Energy per completed job and energy-delay product per scheduler.

    The accelerator platform is fast but power-hungry (idle 0.5 / busy
    3.0 per unit vs CPU 0.1 / 1.0), so affinity-blind placement and
    max-parallelism admission both show up as energy regressions even
    when deadline metrics look similar.
    """
    from repro.core import evaluate_scheduler_runs
    from repro.sim.energy import PowerModel

    t0 = time.time()
    scenario = quick_scenario(load=load)
    traces = scenario.traces(n_traces)
    power = {"cpu": PowerModel(idle_power=0.1, busy_power=1.0),
             "gpu": PowerModel(idle_power=0.5, busy_power=3.0)}
    schedulers: Dict[str, object] = {
        "edf-fit": EDFScheduler(parallelism="fit"),
        "edf-min": EDFScheduler(parallelism="min"),
        "edf-blind": EDFScheduler(platform_choice="blind"),
        "greedy-elastic": GreedyElasticScheduler(),
    }
    if drl is not None:
        schedulers["drl"] = drl
    rows: List[Row] = []
    for name, sched in schedulers.items():
        sims = evaluate_scheduler_runs(
            sched, scenario.platforms, traces, max_ticks=scenario.max_ticks,
            power_models=power,
        )
        reports = [s.metrics() for s in sims]
        energy = float(np.mean([s.energy_meter.total_energy for s in sims]))
        epj = float(np.mean([
            s.energy_meter.energy_per_job(max(r.num_finished, 1))
            for s, r in zip(sims, reports)
        ]))
        edp = float(np.mean([
            s.energy_meter.energy_delay_product(r.mean_jct)
            for s, r in zip(sims, reports)
        ]))
        rows.append({
            "scheduler": name, "total_energy": energy, "energy_per_job": epj,
            "energy_delay_product": edp,
            "miss_rate": float(np.mean([r.miss_rate for r in reports])),
            "mean_jct": float(np.mean([r.mean_jct for r in reports])),
        })
    rows.sort(key=lambda r: r["energy_per_job"])
    text = format_table(rows, title=f"E14: energy accounting (load={load})",
                        precision=3)
    return ExperimentOutput("e14_energy", rows, {}, text, time.time() - t0)


# ---------------------------------------------------------------------------
# E15 — DAG workloads (table)
# ---------------------------------------------------------------------------
def e15_dag_workloads(
    load: float = 0.6,
    n_traces: int = 3,
    n_dags: int = 12,
    seed_base: int = 4000,
    include_drl: bool = False,
    train_iterations: int = 40,
    seed: int = 0,
) -> ExperimentOutput:
    """Deadline outcomes on dependency-structured (DAG) workloads.

    Decima-lineage extension: each submission is a small task graph whose
    stages become schedulable only when their parents finish. Compares
    stage-release scheduling under critical-path-first, EDF, and FIFO
    orderings; with ``include_drl`` a PPO policy trained directly on the
    DAG environment (:class:`repro.dag.DAGEpisodeFactory`) joins the
    table. Expected shape: CP-first beats deadline/arrival orderings on
    graph miss rate, because critical-path pressure — not arrival order —
    bounds the graph's completion.
    """
    from repro.dag import (
        CriticalPathScheduler,
        DAGEpisodeFactory,
        DAGWorkloadConfig,
        DAGSimulation,
        generate_dag_trace,
    )

    t0 = time.time()
    scenario = quick_scenario(load=load)
    config = DAGWorkloadConfig(n_dags=n_dags, horizon=40)
    rows: List[Row] = []
    schedulers: Dict[str, object] = {
        "cp-first": CriticalPathScheduler(),
        "edf": EDFScheduler(),
        "fifo": baseline_roster()["fifo"],
    }
    if include_drl:
        from repro.core import SchedulerEnv, train_scheduler

        factory = DAGEpisodeFactory(
            scenario.platforms, config,
            fixed_seeds=[seed_base + 100 + i for i in range(8)])
        env = SchedulerEnv(factory, config=scenario.core,
                           max_ticks=scenario.max_ticks, seed=seed)
        # Imitation warm start: the teacher works through the shared
        # queue view, which is CP-ordered on DAG simulations, so the
        # cloned policy starts near CP-first behaviour.
        result = train_scheduler(env, algo="ppo", iterations=train_iterations,
                                 episodes_per_iter=4, seed=seed,
                                 algo_config=_ppo_config(warm_start=True),
                                 warm_start=True)
        if result.scheduler is not None:
            schedulers["drl-dag"] = result.scheduler
    for name, sched in schedulers.items():
        reports = []
        graph_miss = []
        for i in range(n_traces):
            rng = np.random.default_rng(seed_base + i)
            dags = generate_dag_trace(config, scenario.platforms, rng)
            sim = DAGSimulation(scenario.platforms, dags,
                                SimulationConfig(horizon=scenario.max_ticks))
            reports.append(sim.run_policy(sched, max_ticks=scenario.max_ticks))
            graph_miss.append(sim.graph_miss_rate())
        rows.append({
            "scheduler": name,
            "graph_miss_rate": float(np.mean(graph_miss)),
            **_mean_metrics(reports),
        })
    rows.sort(key=lambda r: r["graph_miss_rate"])
    text = format_table(rows, title=f"E15: DAG workloads ({n_dags} graphs/trace)")
    return ExperimentOutput("e15_dag_workloads", rows, {}, text, time.time() - t0)


# ---------------------------------------------------------------------------
# E16 — extended operational baselines (table)
# ---------------------------------------------------------------------------
def e16_extended_baselines(
    loads: Sequence[float] = (0.7, 1.1),
    n_traces: int = 3,
    drop_on_miss: bool = False,
    workers: int = 1,
) -> ExperimentOutput:
    """Backfilling, admission control, and migration vs the core roster.

    The operational techniques a production deployment layers onto the
    base policy. Expected shape: at overload, admission control trades
    drops for on-time completions of the remaining jobs (lower tardiness);
    EASY backfilling fixes FIFO's convoy effect; migration helps when
    affinity-mismatched placements happen under pressure. The fairness
    column (Jain index over per-class slowdowns) exposes policies that
    buy their miss rate by starving one class.
    """
    from repro.baselines import (
        AdmissionControlScheduler,
        BackfillScheduler,
        MigratingElasticScheduler,
    )

    t0 = time.time()
    rows: List[Row] = []
    for load in loads:
        scenario = quick_scenario(load=load)
        traces = scenario.traces(n_traces)
        schedulers: Dict[str, object] = {
            "fifo": baseline_roster()["fifo"],
            "easy-backfill": BackfillScheduler(),
            "edf": EDFScheduler(),
            "ac(edf)": AdmissionControlScheduler(EDFScheduler()),
            "greedy-elastic": GreedyElasticScheduler(),
            "ac(greedy-elastic)": AdmissionControlScheduler(GreedyElasticScheduler()),
            "migrating-elastic": MigratingElasticScheduler(),
        }
        for name, sched in schedulers.items():
            reports = evaluate_scheduler(sched, scenario.platforms, traces,
                                         drop_on_miss=drop_on_miss,
                                         max_ticks=scenario.max_ticks,
                                         workers=workers)
            rows.append({
                "load": load,
                "scheduler": name,
                **_mean_metrics(reports),
                "class_fairness": float(np.mean(
                    [r.class_fairness for r in reports])),
                "dropped": float(np.mean([r.num_dropped for r in reports])),
            })
    text = format_table(rows, title="E16: extended operational baselines")
    return ExperimentOutput("e16_extended_baselines", rows, {}, text,
                            time.time() - t0)


# ---------------------------------------------------------------------------
# E17 — learned admission control (table)
# ---------------------------------------------------------------------------
def e17_learned_admission(
    load: float = 1.1,
    train_iterations: int = 60,
    n_traces: int = 3,
    seed: int = 0,
) -> ExperimentOutput:
    """DRL with vs without the reject action at overload.

    With ``reject_actions=True`` the policy may shed provably hopeless
    jobs (negative best-case slack). The shed jobs were misses either
    way; what changes is queue hygiene — the reject-capable policy
    should match the rigid one on miss rate while cutting tardiness
    (late work no longer lingers), mirroring the heuristic
    admission-control result of E16.
    """
    t0 = time.time()
    rows: List[Row] = []
    variants = {
        "drl": quick_scenario(load=load, reject=False),
        "drl+reject": quick_scenario(load=load, reject=True),
    }
    eval_traces = variants["drl"].traces(n_traces)
    for name, scenario in variants.items():
        sched = train_drl(scenario, iterations=train_iterations, seed=seed)
        from repro.core import evaluate_scheduler_runs

        sims = evaluate_scheduler_runs(sched, scenario.platforms, eval_traces,
                                       max_ticks=scenario.max_ticks)
        reports = [s.metrics() for s in sims]
        rows.append({
            "variant": name,
            **_mean_metrics(reports),
            "dropped": float(np.mean([r.num_dropped for r in reports])),
        })
    # Heuristic anchors for context.
    from repro.baselines import AdmissionControlScheduler

    for name, sched in [("edf", EDFScheduler()),
                        ("ac(edf)", AdmissionControlScheduler(EDFScheduler()))]:
        scenario = variants["drl"]
        reports = evaluate_scheduler(sched, scenario.platforms, eval_traces,
                                     max_ticks=scenario.max_ticks)
        rows.append({"variant": name, **_mean_metrics(reports),
                     "dropped": float(np.mean([r.num_dropped for r in reports]))})
    text = format_table(rows, title=f"E17: learned admission control (load={load})")
    return ExperimentOutput("e17_learned_admission", rows, {}, text,
                            time.time() - t0)


# ---------------------------------------------------------------------------
# E18 — trained-policy leaderboard over the scenario registry (table)
# ---------------------------------------------------------------------------
def e18_leaderboard(
    scenarios: Sequence[str] = ("quick", "swf-fixture", "columnar-fixture"),
    agents: Sequence[str] = ("ppo",),
    baselines: Sequence[str] = ("edf", "tetris", "greedy-elastic", "fifo"),
    train_iterations: int = 40,
    n_traces: int = 3,
    seed: int = 0,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    policy_dir: Optional[str] = None,
) -> ExperimentOutput:
    """Train each agent once per scenario; rank everything everywhere.

    The cross-scenario generalization leaderboard
    (:mod:`repro.harness.leaderboard`): trained policies are persisted
    to the content-addressed policy store, evaluation cells are sharded
    over ``workers`` and memoized in the result cache, and the rows are
    byte-identical for any worker count or cache state. This is the
    entry point the nightly CI job and ``examples/leaderboard_study.py``
    drive; the CLI's ``leaderboard`` subcommand adds artifact output.
    """
    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
    from repro.harness.leaderboard import (
        DEFAULT_POLICY_DIR,
        PolicyStore,
        build_leaderboard,
    )

    t0 = time.time()
    result = build_leaderboard(
        scenario_names=scenarios,
        agents=agents,
        baselines=baselines,
        n_traces=n_traces,
        workers=workers,
        cache=ResultCache(cache_dir if cache_dir else DEFAULT_CACHE_DIR),
        store=PolicyStore(policy_dir if policy_dir else DEFAULT_POLICY_DIR),
        train_iterations=train_iterations,
        seed=seed,
    )
    return ExperimentOutput("e18_leaderboard", result.rows,
                            {}, result.to_text(), time.time() - t0)
