"""Result persistence and aggregation for experiment rows.

The interchange unit across the harness is the *row*: a flat dict of
scalars, one table line or one series point. Experiments, sweeps, and
the CLI's ``--out`` flags all produce rows; :class:`ResultStore` holds
named collections of them and round-trips to a single JSON document
(NumPy scalars coerced to plain Python, so artifacts never depend on
NumPy's repr), and :func:`aggregate_rows` reduces repeated-seed rows
into mean/std summary lines grouped on key columns — the step between
raw per-trace results and the paper-style tables of
:mod:`repro.harness.tables`.

Row contents are deterministic given the inputs (no timestamps, no
run-local state), which is what lets the CLI byte-compare ``--out``
artifacts across worker counts, executor backends, and cache states.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["ResultStore", "aggregate_rows"]

Row = Dict[str, Any]


@dataclass
class ResultStore:
    """Named collections of result rows, serializable to JSON.

    A *row* is a flat dict of scalars (one table line / one series point).
    """

    tables: Dict[str, List[Row]] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, table: str, row: Row) -> None:
        self.tables.setdefault(table, []).append(dict(row))

    def add_rows(self, table: str, rows: Sequence[Row]) -> None:
        for row in rows:
            self.add_row(table, row)

    def get(self, table: str) -> List[Row]:
        return self.tables.get(table, [])

    def save(self, path: str) -> None:
        """Write the store to JSON (NumPy scalars coerced to Python)."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"tables": self.tables, "meta": self.meta}, fh,
                      indent=1, default=_coerce)

    @classmethod
    def load(cls, path: str) -> "ResultStore":
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        return cls(tables=data.get("tables", {}), meta=data.get("meta", {}))


def _coerce(obj):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def aggregate_rows(
    rows: Sequence[Row],
    group_by: Sequence[str],
    metrics: Optional[Sequence[str]] = None,
) -> List[Row]:
    """Group rows by key columns; emit mean and std of each numeric metric.

    Output columns: the group keys, then ``<metric>`` (mean) and
    ``<metric>_std`` per metric, plus ``n`` (group size). Groups are
    emitted in first-seen order.
    """
    if not rows:
        return []
    if metrics is None:
        metrics = [
            k for k, v in rows[0].items()
            if k not in group_by and isinstance(v, (int, float, np.integer, np.floating))
        ]
    groups: Dict[tuple, List[Row]] = {}
    order: List[tuple] = []
    for row in rows:
        key = tuple(row[g] for g in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    out: List[Row] = []
    for key in order:
        members = groups[key]
        agg: Row = dict(zip(group_by, key))
        agg["n"] = len(members)
        for metric in metrics:
            values = np.array([float(m[metric]) for m in members if metric in m])
            if values.size:
                agg[metric] = float(values.mean())
                agg[f"{metric}_std"] = float(values.std())
        out.append(agg)
    return out
