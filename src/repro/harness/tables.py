"""Aligned text tables and CSV emission (the harness's "figure" output)."""

from __future__ import annotations

import io
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "rows_to_csv"]

Row = Dict[str, Any]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table.

    Column order defaults to first-row key order; missing cells render
    empty. This is what benchmark modules print so the paper's tables can
    be eyeballed straight from test output.
    """
    if not rows:
        return (title + "\n" if title else "") + "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, ""), precision) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(line[i]) for line in cells))
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Row], columns: Optional[Sequence[str]] = None) -> str:
    """Serialize rows to CSV text (simple quoting for commas)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buf = io.StringIO()
    buf.write(",".join(columns) + "\n")
    for row in rows:
        out = []
        for c in columns:
            v = row.get(c, "")
            s = f"{v:.6g}" if isinstance(v, float) else str(v)
            if "," in s or '"' in s:
                s = '"' + s.replace('"', '""') + '"'
            out.append(s)
        buf.write(",".join(out) + "\n")
    return buf.getvalue()
