"""Trained-policy leaderboard over the scenario registry.

The paper's central claim — a trained DRL scheduler beats heuristic
baselines across workload regimes — needs a single artifact that answers
*which policy wins where, and does a policy trained on one scenario
transfer to the others?* This module builds that artifact:

1. **Train once per (scenario, agent)** — every requested agent is
   trained on every named scenario, seeded, and persisted to a
   content-addressed :class:`PolicyStore` keyed by the same structural
   fingerprint discipline as the result cache
   (:mod:`repro.harness.cache`): same scenario spec + same training spec
   => same key, so a re-run is a *store hit* and retrains nothing.
2. **Evaluate every policy against every scenario** — the full
   cross-scenario generalization matrix, fanned out through the sharded
   parallel runner (:func:`~repro.harness.parallel.run_cells`) as
   ordinary :class:`~repro.harness.parallel.EvalCell`\\ s, so rows are
   byte-identical for ``workers`` 1/2/4 and previously computed cells
   come from the persistent :class:`~repro.harness.cache.ResultCache`.
3. **Rank** — per-scenario mean + bootstrap CI of the primary metric,
   per-scenario rank, pairwise win rate, and a *transfer gap* for each
   trained policy (how much worse it is away from home than the policy
   natively trained there).

Heuristic baselines join the table as untrained entries, so the
leaderboard directly renders the paper's DRL-vs-heuristics comparison
across every registered workload regime.

Everything in the output artifact is deterministic — no timestamps, no
run-local state — so ``leaderboard.json`` is byte-identical across
worker counts and across cold/warm cache runs (the CI smoke asserts
exactly that).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.harness.cache import ResultCache, fingerprint
from repro.harness.parallel import BaselineFactory, EvalCell, run_cells
from repro.harness.scenario import Scenario
from repro.harness.stats import bootstrap_ci
from repro.harness.tables import format_table
from repro.util.io import atomic_writer

__all__ = [
    "DEFAULT_POLICY_DIR",
    "AgentSpec",
    "PolicyStore",
    "StoredPolicyFactory",
    "LeaderboardResult",
    "build_leaderboard",
]

#: Default policy-store location, a sibling of ``.repro-cache/``.
DEFAULT_POLICY_DIR = ".repro-policies"

#: Bump to invalidate every stored policy when training or encoding
#: semantics change incompatibly.
_STORE_SCHEMA = "1"

#: Algorithms that yield a :class:`~repro.core.agent.DRLScheduler` —
#: the value-based DQN has no CategoricalPolicy adapter, so it cannot be
#: evaluated head-to-head as a scheduler (checkpoint it with
#: :mod:`repro.rl.checkpoint` instead).
_SCHEDULER_ALGOS = ("reinforce", "a2c", "ppo")


@dataclass(frozen=True)
class AgentSpec:
    """One trainable leaderboard entry: algorithm + training budget.

    Structural and picklable, so it fingerprints into the policy-store
    key: any change (more iterations, different seed, another algo
    config) yields a new key and therefore a retrain — invalidation by
    construction, exactly like the result cache.
    """

    algo: str = "ppo"
    iterations: int = 40
    seed: int = 0
    warm_start: bool = True
    num_envs: int = 1
    n_train_traces: int = 8
    n_val_traces: int = 3
    algo_config: Optional[object] = None

    def __post_init__(self) -> None:
        if self.algo not in _SCHEDULER_ALGOS:
            raise ValueError(
                f"leaderboard agents must be one of {_SCHEDULER_ALGOS} "
                f"(got {self.algo!r}); dqn has no scheduler adapter")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    def entry_name(self, scenario_name: str) -> str:
        """Leaderboard entry label for this agent trained on a scenario."""
        return f"{self.algo}@{scenario_name}"


def _core_to_dict(core) -> dict:
    return dataclasses.asdict(core)


def _core_from_dict(d: dict):
    from repro.core.config import CoreConfig
    from repro.core.reward import RewardWeights

    d = dict(d)
    d["parallelism_levels"] = tuple(d["parallelism_levels"])
    d["reward"] = RewardWeights(**d["reward"])
    return CoreConfig(**d)


class PolicyStore:
    """Content-addressed on-disk store of trained scheduler policies.

    Entries are ``.npz`` files under the same two-level fan-out as the
    result cache (``<root>/<key[:2]>/<key>.npz``), written atomically.
    The key is a structural fingerprint of (scenario spec, agent spec),
    so *what would be trained* addresses *what was trained*: a second
    leaderboard run resolves every (scenario, agent) pair to an existing
    file and trains nothing.

    Each entry stores the policy network weights verbatim (float64, so
    a reload is bit-identical) plus the metadata needed to rebuild the
    :class:`~repro.core.agent.DRLScheduler` *as trained* — MDP config,
    platform order, work scale, layer sizes — independent of whatever
    scenario it is later evaluated on.
    """

    def __init__(self, root: os.PathLike = DEFAULT_POLICY_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.trained: List[str] = []

    def key(self, scenario: Scenario, spec: AgentSpec) -> str:
        """Fingerprint addressing the policy ``spec`` trains on ``scenario``."""
        return fingerprint("policy-store", _STORE_SCHEMA, scenario, spec)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in sorted(self.root.glob("*/*.npz")))

    def save(self, key: str, scheduler) -> None:
        """Persist a trained :class:`DRLScheduler` under ``key`` (atomic)."""
        params = scheduler.policy.net.params()
        sizes = [params[0].shape[0]] + [w.shape[1] for w in params[0::2]]
        meta = {
            "sizes": sizes,
            "activation": "tanh",
            "work_scale": scheduler.encoder.work_scale,
            "platform_names": list(scheduler.encoder.platform_names),
            "greedy": scheduler.greedy,
            "core": _core_to_dict(scheduler.config),
        }
        path = self._path(key)
        with atomic_writer(path, "wb") as fh:
            np.savez(fh, meta=np.array(json.dumps(meta, sort_keys=True)),
                     **{f"p{i}": p for i, p in enumerate(params)})

    def load_scheduler(self, key: str):
        """Rebuild the stored policy as a greedy :class:`DRLScheduler`.

        The scheduler carries its *training-time* MDP config and
        platform order, so it can be evaluated on any scenario whose
        cluster exposes the same platform names — the cross-scenario
        generalization setting.
        """
        from repro.core.agent import DRLScheduler
        from repro.rl.policies import CategoricalPolicy

        path = self._path(key)
        if not path.is_file():
            raise KeyError(f"no stored policy for key {key}; train it first")
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(data["meta"].item())
            sizes = meta["sizes"]
            # The freshly constructed weights are overwritten below by
            # the stored arrays; this RNG only shapes throwaway values.
            policy = CategoricalPolicy.for_sizes(
                sizes[0], sizes[-1], tuple(sizes[1:-1]),
                np.random.default_rng(0),  # repro: allow[DET001]
                activation=meta["activation"])
            params = policy.net.params()
            for i, p in enumerate(params):
                loaded = data[f"p{i}"]
                if loaded.shape != p.shape:
                    raise ValueError(
                        f"stored policy {key}: p{i} shape {loaded.shape} "
                        f"!= {p.shape}")
                p[...] = loaded
        return DRLScheduler(policy, _core_from_dict(meta["core"]),
                            meta["platform_names"], greedy=meta["greedy"],
                            work_scale=meta["work_scale"])

    def get_or_train(self, scenario_name: str, scenario: Scenario,
                     spec: AgentSpec) -> str:
        """The store key for (scenario, spec), training on a miss.

        Training runs in the calling process (seeded, deterministic) and
        the result is saved before the key is returned, so evaluation
        always reads the *stored bytes* — cold and warm runs evaluate
        the exact same policy.
        """
        key = self.key(scenario, spec)
        if key in self:
            self.hits += 1
            return key
        self.misses += 1
        from repro.harness.experiments import train_drl

        scheduler = train_drl(
            scenario,
            iterations=spec.iterations,
            seed=spec.seed,
            algo=spec.algo,
            algo_config=spec.algo_config,
            warm_start=spec.warm_start,
            n_train_traces=spec.n_train_traces,
            n_val_traces=spec.n_val_traces,
            num_envs=spec.num_envs,
        )
        self.save(key, scheduler)
        self.trained.append(spec.entry_name(scenario_name))
        return key

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "trained": len(self.trained)}


@dataclass(frozen=True)
class StoredPolicyFactory:
    """Picklable scheduler factory reading a :class:`PolicyStore` entry.

    Crosses the ``spawn`` boundary as (root, key) — workers reload the
    policy from disk, so shipping a cell stays cheap and every process
    evaluates bit-identical weights. The ``scenario`` argument is part
    of the factory protocol but unused: a stored policy carries its own
    training-time config.
    """

    root: str
    key: str

    def __call__(self, scenario: Scenario):  # noqa: ARG002 - protocol
        return PolicyStore(self.root).load_scheduler(self.key)


@dataclass
class LeaderboardResult:
    """The leaderboard artifact: ranking rows + cross-scenario matrix.

    ``rows`` has one line per entry (trained policy or baseline) with
    the overall mean of the primary metric, its bootstrap CI, pairwise
    win rate, mean per-scenario rank, and (for trained policies) the
    transfer gap. ``matrix`` has one line per (entry, scenario) cell.
    Both are plain scalar dicts, deterministic given the inputs — no
    timestamps or run-local state — so the serialized artifact is
    byte-identical across worker counts and cache states.
    """

    metric: str
    scenario_names: List[str]
    rows: List[dict]
    matrix: List[dict]
    policies: Dict[str, str] = field(default_factory=dict)
    store_stats: Dict[str, int] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> str:
        """Deterministic JSON serialization (the ``--out *.json`` artifact).

        Run-local statistics (store/cache hit counts) are deliberately
        excluded: they differ between cold and warm runs while the
        leaderboard content does not.
        """
        payload = {
            "schema": 1,
            "metric": self.metric,
            "scenarios": self.scenario_names,
            "rows": self.rows,
            "matrix": self.matrix,
            "policies": self.policies,
        }
        return json.dumps(payload, sort_keys=True, indent=1) + "\n"

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering (the ``--out *.md`` artifact)."""
        lines = [f"# Trained-policy leaderboard ({self.metric})", ""]
        columns = ["rank", "entry", "trained_on", self.metric,
                   "ci_lo", "ci_hi", "win_rate", "mean_rank", "transfer_gap"]
        lines += _markdown_table(self.rows, columns)
        lines += ["", f"## Cross-scenario matrix (mean {self.metric})", ""]
        by_entry: Dict[str, Dict[str, float]] = {}
        for cell in self.matrix:
            by_entry.setdefault(cell["entry"], {})[cell["scenario"]] = \
                cell[self.metric]
        matrix_rows = [
            {"entry": row["entry"],
             **{s: by_entry[row["entry"]].get(s, "") for s in self.scenario_names}}
            for row in self.rows
        ]
        lines += _markdown_table(matrix_rows, ["entry", *self.scenario_names])
        return "\n".join(lines) + "\n"

    def to_text(self) -> str:
        """Aligned monospace tables for terminal output."""
        columns = ["rank", "entry", "trained_on", self.metric,
                   "ci_lo", "ci_hi", "win_rate", "mean_rank", "transfer_gap"]
        out = format_table(self.rows, columns=columns,
                           title=f"leaderboard ({self.metric})")
        out += "\n\n" + format_table(
            self.matrix,
            columns=["entry", "scenario", self.metric, "ci_lo", "ci_hi",
                     "mean_slowdown", "mean_utilization"],
            title="cross-scenario matrix")
        return out


def _markdown_table(rows: Sequence[dict], columns: Sequence[str],
                    precision: int = 4) -> List[str]:
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.{precision}f}"
        return str(v)

    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join(" --- " for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in columns)
                     + " |")
    return lines


def _resolve_specs(agents: Sequence[Union[str, AgentSpec]],
                   train_iterations: Optional[int],
                   seed: int) -> List[AgentSpec]:
    specs: List[AgentSpec] = []
    for agent in agents:
        if isinstance(agent, AgentSpec):
            specs.append(agent)
        else:
            kwargs = {"algo": str(agent), "seed": seed}
            if train_iterations is not None:
                kwargs["iterations"] = train_iterations
            specs.append(AgentSpec(**kwargs))
    names = [s.algo for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate agent algorithms in {names}; entry "
                         "names (algo@scenario) must be unique")
    return specs


def _check_platforms(scenarios: Dict[str, Scenario]) -> None:
    """Cross-scenario evaluation needs one shared platform-name set."""
    names = {name: tuple(sorted(p.name for p in s.platforms))
             for name, s in scenarios.items()}
    distinct = set(names.values())
    if len(distinct) > 1:
        raise ValueError(
            "leaderboard scenarios must share platform names so policies "
            f"transfer across them; got {names}")


def build_leaderboard(
    scenario_names: Sequence[str] = ("quick", "swf-fixture", "columnar-fixture"),
    agents: Sequence[Union[str, AgentSpec]] = ("ppo",),
    baselines: Sequence[str] = ("edf", "tetris", "greedy-elastic", "fifo"),
    n_traces: int = 3,
    base_seed: int = 1000,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    store: Optional[PolicyStore] = None,
    train_iterations: Optional[int] = None,
    seed: int = 0,
    metric: str = "miss_rate",
    backend=None,
) -> LeaderboardResult:
    """Train-once-per-scenario, evaluate-everywhere, rank.

    ``scenario_names`` resolve through the registry of
    :mod:`repro.harness.library` (names or trace-container paths).
    ``agents`` are algorithm names or full :class:`AgentSpec`\\ s; each
    is trained once per scenario through ``store`` (default
    ``.repro-policies/``). ``baselines`` join as untrained entries.
    Evaluation cells fan out over ``workers`` processes — or over any
    executor ``backend`` (``"serial"`` / ``"pool"`` / ``"queue"`` or an
    instance, see :mod:`repro.harness.executor`) — and memoize in
    ``cache``; the returned rows are independent of all three.

    The primary ``metric`` (lower is better) drives ranking, win rate,
    and the transfer gap; the matrix additionally records slowdown and
    utilization per cell.
    """
    from repro.harness.library import get_scenario

    if n_traces < 1:
        raise ValueError("n_traces must be >= 1")
    if not scenario_names:
        raise ValueError("need at least one scenario")
    scenarios: Dict[str, Scenario] = {
        str(name): get_scenario(str(name)) for name in scenario_names
    }
    _check_platforms(scenarios)
    specs = _resolve_specs(agents, train_iterations, seed)
    if not specs and not baselines:
        raise ValueError("need at least one agent or baseline entry")
    store = store if store is not None else PolicyStore()

    # --- phase 1: train (or resolve) one policy per (scenario, agent) ----
    policies: Dict[str, str] = {}
    entries: List[Tuple[str, Optional[str], object]] = []  # (entry, home, factory)
    for scen_name, scenario in scenarios.items():
        for spec in specs:
            entry = spec.entry_name(scen_name)
            key = store.get_or_train(scen_name, scenario, spec)
            policies[entry] = key
            entries.append((entry, scen_name,
                            StoredPolicyFactory(str(store.root), key)))
    for name in baselines:
        entries.append((str(name), None, BaselineFactory(str(name))))

    # --- phase 2: the full entry x scenario x trace evaluation grid ------
    cells: List[EvalCell] = []
    for entry, _, factory in entries:
        for scen_name, scenario in scenarios.items():
            for i in range(n_traces):
                cells.append(EvalCell(
                    scenario_name=scen_name,
                    scenario=scenario,
                    scheduler_name=entry,
                    factory=factory,
                    trace_index=i,
                    trace_seed=base_seed + i,
                    max_ticks=scenario.max_ticks,
                ))
    reports = run_cells(cells, workers=workers, cache=cache, backend=backend)

    # --- phase 3: aggregate, rank, and measure transfer ------------------
    values: Dict[Tuple[str, str], List[float]] = {}
    extras: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    for cell, report in zip(cells, reports):
        cell_id = (cell.scheduler_name, cell.scenario_name)
        values.setdefault(cell_id, []).append(float(getattr(report, metric)))
        extra = extras.setdefault(cell_id, {"mean_slowdown": [],
                                            "mean_utilization": []})
        extra["mean_slowdown"].append(report.mean_slowdown)
        extra["mean_utilization"].append(report.mean_utilization)

    scen_order = list(scenarios)
    entry_names = [entry for entry, _, _ in entries]
    means = {cell_id: float(np.mean(vals)) for cell_id, vals in values.items()}

    matrix: List[dict] = []
    for entry, _, _ in entries:
        for scen_name in scen_order:
            vals = values[(entry, scen_name)]
            # Fixed resample stream: leaderboard CIs are part of the
            # published artifact and must be identical on every rebuild.
            # repro: allow[DET001]
            ci = bootstrap_ci(vals, rng=np.random.default_rng(0))
            matrix.append({
                "entry": entry,
                "scenario": scen_name,
                metric: ci.mean,
                "ci_lo": ci.lo,
                "ci_hi": ci.hi,
                "mean_slowdown": float(np.mean(
                    extras[(entry, scen_name)]["mean_slowdown"])),
                "mean_utilization": float(np.mean(
                    extras[(entry, scen_name)]["mean_utilization"])),
                "n_traces": len(vals),
            })

    # Per-scenario ranks (1 = best); ties break on entry name so the
    # ranking is deterministic.
    ranks: Dict[Tuple[str, str], int] = {}
    for scen_name in scen_order:
        ordered = sorted(entry_names,
                         key=lambda e: (means[(e, scen_name)], e))
        for r, entry in enumerate(ordered, start=1):
            ranks[(entry, scen_name)] = r

    rows: List[dict] = []
    for entry, home, _ in entries:
        pooled = [v for s in scen_order for v in values[(entry, s)]]
        # Same fixed resample stream as the per-scenario CIs above.
        # repro: allow[DET001]
        ci = bootstrap_ci(pooled, rng=np.random.default_rng(0))
        overall = float(np.mean([means[(entry, s)] for s in scen_order]))
        wins = 0.0
        comparisons = 0
        for s in scen_order:
            for other in entry_names:
                if other == entry:
                    continue
                comparisons += 1
                if means[(entry, s)] < means[(other, s)]:
                    wins += 1.0
                elif means[(entry, s)] == means[(other, s)]:
                    wins += 0.5
        row = {
            "entry": entry,
            "trained_on": home if home is not None else "",
            metric: overall,
            "ci_lo": ci.lo,
            "ci_hi": ci.hi,
            "win_rate": wins / comparisons if comparisons else 0.0,
            "mean_rank": float(np.mean([ranks[(entry, s)]
                                        for s in scen_order])),
        }
        if home is not None:
            # Transfer gap: how much worse this policy is away from home
            # than the same-algorithm policy natively trained there
            # (positive = transfer costs something; 0 with one scenario).
            algo = entry.split("@", 1)[0]
            gaps = [
                means[(entry, s)] - means[(f"{algo}@{s}", s)]
                for s in scen_order
                if s != home and f"{algo}@{s}" in policies
            ]
            row["transfer_gap"] = float(np.mean(gaps)) if gaps else 0.0
        rows.append(row)

    rows.sort(key=lambda r: (r["mean_rank"], r[metric], r["entry"]))
    for i, row in enumerate(rows, start=1):
        row["rank"] = i

    return LeaderboardResult(
        metric=metric,
        scenario_names=scen_order,
        rows=rows,
        matrix=matrix,
        policies=policies,
        store_stats=dict(store.stats),
        cache_stats=dict(cache.stats) if cache is not None else {},
    )
