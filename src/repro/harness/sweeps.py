"""Generic scheduler-comparison sweeps over paired traces.

The sweep grid is materialized as independent
:class:`~repro.harness.parallel.EvalCell` specs — one per (scenario,
scheduler, trace seed) — and executed through
:func:`~repro.harness.parallel.run_cells`, which shards them over a
process pool (``workers > 1``) and/or serves them from a persistent
:class:`~repro.harness.cache.ResultCache`. Results are merged in cell
order, so the aggregated rows are byte-identical regardless of worker
count or cache state.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.cache import ResultCache
from repro.harness.parallel import EvalCell, run_cells
from repro.harness.results import Row, aggregate_rows
from repro.harness.scenario import Scenario

__all__ = ["sweep_schedulers"]

SchedulerFactory = Callable[[Scenario], object]


def sweep_schedulers(
    scenarios: Dict[str, Scenario],
    schedulers: Dict[str, SchedulerFactory],
    n_traces: int = 3,
    base_seed: int = 1000,
    max_ticks: Optional[int] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Row]:
    """Evaluate every scheduler on every scenario over paired traces.

    ``schedulers`` maps name -> factory called per evaluation cell (so
    trained policies can be injected as constants and heuristics
    re-instantiated; the per-cell instantiation is what makes cells
    independent and therefore shardable). Returns aggregated rows: one
    per (scenario, scheduler) with mean/std of the key metrics over the
    trace seeds.

    ``workers > 1`` shards the cells over a spawn-safe process pool —
    factories must then be picklable module-level callables (e.g.
    :class:`~repro.harness.parallel.BaselineFactory`). ``cache`` makes
    completed cells persistent: re-running a sweep recomputes only the
    cells whose inputs changed.

    Note on stateful schedulers: because the factory runs per cell, a
    scheduler that consumes RNG across traces (the ``random`` baseline,
    stochastic DRL decoding) replays its stream from the seed on every
    trace instead of continuing it — that is what makes cells
    order-independent. Deterministic schedulers (the rest of the roster,
    greedy DRL) are unaffected.
    """
    cells: List[EvalCell] = []
    for scen_name, scenario in scenarios.items():
        ticks = max_ticks if max_ticks is not None else scenario.max_ticks
        for sched_name, factory in schedulers.items():
            for i in range(n_traces):
                cells.append(EvalCell(
                    scenario_name=scen_name,
                    scenario=scenario,
                    scheduler_name=sched_name,
                    factory=factory,
                    trace_index=i,
                    trace_seed=base_seed + i,
                    max_ticks=ticks,
                ))
    reports = run_cells(cells, workers=workers, cache=cache)
    raw: List[Row] = []
    for cell, rep in zip(cells, reports):
        raw.append({
            "scenario": cell.scenario_name,
            "scheduler": cell.scheduler_name,
            "trace": cell.trace_index,
            "miss_rate": rep.miss_rate,
            "mean_slowdown": rep.mean_slowdown,
            "mean_tardiness": rep.mean_tardiness,
            "mean_utilization": rep.mean_utilization,
            "throughput": rep.throughput,
        })
    return aggregate_rows(
        raw,
        group_by=["scenario", "scheduler"],
        metrics=["miss_rate", "mean_slowdown", "mean_tardiness",
                 "mean_utilization", "throughput"],
    )
