"""Generic scheduler-comparison sweeps over paired traces.

The sweep grid is materialized as independent
:class:`~repro.harness.parallel.EvalCell` specs — one per (scenario,
scheduler, trace seed) — and executed through
:func:`~repro.harness.parallel.run_cells`, which shards them over a
process pool (``workers > 1``) and/or serves them from a persistent
:class:`~repro.harness.cache.ResultCache`. Results are merged in cell
order, so the aggregated rows are byte-identical regardless of worker
count or cache state.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.cache import ResultCache
from repro.harness.parallel import EvalCell, run_cells
from repro.harness.results import Row, aggregate_rows
from repro.harness.scenario import Scenario

__all__ = ["sweep_schedulers", "evaluate_windowed", "sweep_windowed"]

SchedulerFactory = Callable[[Scenario], object]


def sweep_schedulers(
    scenarios: Dict[str, Scenario],
    schedulers: Dict[str, SchedulerFactory],
    n_traces: int = 3,
    base_seed: int = 1000,
    max_ticks: Optional[int] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    backend=None,
) -> List[Row]:
    """Evaluate every scheduler on every scenario over paired traces.

    ``schedulers`` maps name -> factory called per evaluation cell (so
    trained policies can be injected as constants and heuristics
    re-instantiated; the per-cell instantiation is what makes cells
    independent and therefore shardable). Returns aggregated rows: one
    per (scenario, scheduler) with mean/std of the key metrics over the
    trace seeds.

    ``workers > 1`` shards the cells over a spawn-safe process pool —
    factories must then be picklable module-level callables (e.g.
    :class:`~repro.harness.parallel.BaselineFactory`). ``cache`` makes
    completed cells persistent: re-running a sweep recomputes only the
    cells whose inputs changed.

    Note on stateful schedulers: because the factory runs per cell, a
    scheduler that consumes RNG across traces (the ``random`` baseline,
    stochastic DRL decoding) replays its stream from the seed on every
    trace instead of continuing it — that is what makes cells
    order-independent. Deterministic schedulers (the rest of the roster,
    greedy DRL) are unaffected.
    """
    cells: List[EvalCell] = []
    for scen_name, scenario in scenarios.items():
        ticks = max_ticks if max_ticks is not None else scenario.max_ticks
        for sched_name, factory in schedulers.items():
            for i in range(n_traces):
                cells.append(EvalCell(
                    scenario_name=scen_name,
                    scenario=scenario,
                    scheduler_name=sched_name,
                    factory=factory,
                    trace_index=i,
                    trace_seed=base_seed + i,
                    max_ticks=ticks,
                ))
    reports = run_cells(cells, workers=workers, cache=cache, backend=backend)
    raw: List[Row] = []
    for cell, rep in zip(cells, reports):
        raw.append({
            "scenario": cell.scenario_name,
            "scheduler": cell.scheduler_name,
            "trace": cell.trace_index,
            "miss_rate": rep.miss_rate,
            "mean_slowdown": rep.mean_slowdown,
            "mean_tardiness": rep.mean_tardiness,
            "mean_utilization": rep.mean_utilization,
            "throughput": rep.throughput,
        })
    return aggregate_rows(
        raw,
        group_by=["scenario", "scheduler"],
        metrics=["miss_rate", "mean_slowdown", "mean_tardiness",
                 "mean_utilization", "throughput"],
    )


def evaluate_windowed(
    path: str,
    schedulers: Dict[str, SchedulerFactory],
    window_jobs: int,
    platforms=None,
    core=None,
    engine: str = "tick",
    max_ticks: Optional[int] = None,
    trace_seed: int = 1000,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    backend=None,
) -> Dict[str, "object"]:
    """Evaluate schedulers over a trace container in windowed segments.

    The container at ``path`` is split into contiguous
    :class:`~repro.harness.library.TraceWindowScenario` cells of at most
    ``window_jobs`` jobs (one streaming planning pass); every
    (scheduler, window) pair becomes an independent
    :class:`~repro.harness.parallel.EvalCell` streaming only its window,
    so peak memory is bounded by the window size however large the
    archive. Per-window :class:`~repro.sim.metrics.SegmentMetrics` are
    reduced in window order with
    :func:`~repro.sim.metrics.merge_segments` — an exact deterministic
    reduction, independent of backend, worker count, and cache state.

    Returns scheduler name -> merged
    :class:`~repro.sim.metrics.MetricsReport`.
    """
    from repro.harness.library import plan_trace_windows
    from repro.sim.metrics import merge_segments

    windows = plan_trace_windows(
        path, window_jobs, platforms=platforms, core=core,
        max_ticks=max_ticks, engine=engine)
    cells: List[EvalCell] = []
    for sched_name, factory in schedulers.items():
        for w in windows:
            cells.append(EvalCell(
                scenario_name=f"{path}[{w.window_index}/{w.n_windows}]",
                scenario=w,
                scheduler_name=sched_name,
                factory=factory,
                trace_index=w.window_index,
                trace_seed=trace_seed,
                max_ticks=w.max_ticks,
            ))
    segments = run_cells(cells, workers=workers, cache=cache, backend=backend)
    reports: Dict[str, object] = {}
    n = len(windows)
    for i, sched_name in enumerate(schedulers):
        reports[sched_name] = merge_segments(segments[i * n:(i + 1) * n])
    return reports


def sweep_windowed(
    path: str,
    schedulers: Dict[str, SchedulerFactory],
    window_jobs: int,
    scenario_name: Optional[str] = None,
    **kwargs,
) -> List[Row]:
    """Windowed sweep rows: one per scheduler, merged across windows.

    Thin row-shaping wrapper over :func:`evaluate_windowed` matching the
    ``sweep_schedulers`` row vocabulary, so the CLI table/JSON emitters
    work unchanged.
    """
    reports = evaluate_windowed(path, schedulers, window_jobs, **kwargs)
    name = scenario_name if scenario_name is not None else str(path)
    rows: List[Row] = []
    for sched_name, rep in reports.items():
        rows.append({
            "scenario": name,
            "scheduler": sched_name,
            "window_jobs": window_jobs,
            "n_jobs": rep.num_jobs,
            "miss_rate": rep.miss_rate,
            "mean_slowdown": rep.mean_slowdown,
            "mean_tardiness": rep.mean_tardiness,
            "mean_utilization": rep.mean_utilization,
            "throughput": rep.throughput,
        })
    return rows
