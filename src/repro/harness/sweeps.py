"""Generic scheduler-comparison sweeps over paired traces."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.training import evaluate_scheduler
from repro.harness.results import Row, aggregate_rows
from repro.harness.scenario import Scenario

__all__ = ["sweep_schedulers"]

SchedulerFactory = Callable[[Scenario], object]


def sweep_schedulers(
    scenarios: Dict[str, Scenario],
    schedulers: Dict[str, SchedulerFactory],
    n_traces: int = 3,
    base_seed: int = 1000,
    max_ticks: Optional[int] = None,
) -> List[Row]:
    """Evaluate every scheduler on every scenario over paired traces.

    ``schedulers`` maps name -> factory called per scenario (so trained
    policies can be injected as constants and heuristics re-instantiated).
    Returns aggregated rows: one per (scenario, scheduler) with mean/std
    of the key metrics over the trace seeds.
    """
    raw: List[Row] = []
    for scen_name, scenario in scenarios.items():
        traces = scenario.traces(n_traces, base_seed=base_seed)
        ticks = max_ticks if max_ticks is not None else scenario.max_ticks
        for sched_name, factory in schedulers.items():
            policy = factory(scenario)
            reports = evaluate_scheduler(policy, scenario.platforms, traces,
                                         max_ticks=ticks,
                                         engine=scenario.engine)
            for i, rep in enumerate(reports):
                raw.append({
                    "scenario": scen_name,
                    "scheduler": sched_name,
                    "trace": i,
                    "miss_rate": rep.miss_rate,
                    "mean_slowdown": rep.mean_slowdown,
                    "mean_tardiness": rep.mean_tardiness,
                    "mean_utilization": rep.mean_utilization,
                    "throughput": rep.throughput,
                })
    return aggregate_rows(
        raw,
        group_by=["scenario", "scheduler"],
        metrics=["miss_rate", "mean_slowdown", "mean_tardiness",
                 "mean_utilization", "throughput"],
    )
