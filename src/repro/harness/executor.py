"""Pluggable executor backends for evaluation-cell grids.

:func:`execute_cells` owns the scheduling/merge logic that used to live
inside ``run_cells``: probe the :class:`~repro.harness.cache.ResultCache`,
hand the misses to a *backend*, merge outcomes back in deterministic
cell order (cell ``i``'s report always lands at index ``i``), and
persist every successful cell before surfacing the first failure. The
merged result is therefore independent of the backend, the worker
count, and the cache hit/miss split — ``workers=N`` byte-identity
generalizes to ``hosts=N``.

Three backends:

* :class:`SerialBackend` — in-process loop (the reference ordering);
* :class:`PoolBackend` — the ``spawn`` process pool, unchanged semantics
  from the pre-refactor ``run_cells`` (serial fallback for single cells
  and stdin scripts whose ``__main__`` cannot be re-imported);
* :class:`QueueBackend` — a shared-directory work queue any number of
  worker processes **or hosts** can join (``repro.cli worker``). Cells
  are published as pickled task files named by their cache fingerprint;
  workers lease cells via atomic claim files (``O_CREAT | O_EXCL``, the
  same atomic-rename discipline as ``ResultCache``), heartbeat the
  claim's mtime from a daemon thread while simulating, and write
  results into the shared store with an atomic rename. Stale leases
  (heartbeat older than ``lease_timeout``) are reclaimed; duplicate
  completions are idempotent because results are keyed by fingerprint
  and every recompute of a cell produces identical bytes. The driver
  reduces in deterministic cell order and, if every local worker dies
  with work outstanding, reclaims and drains the remainder inline — the
  worst case under any race or crash is recomputing a cell, never
  corrupting or losing one.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import pickle
import signal
import socket
import threading
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.cache import ResultCache, decode_result, encode_result
from repro.util.io import atomic_write_bytes
from repro.harness.parallel import (
    CellFailure,
    EvalCell,
    _check_picklable,
    _failure_error,
    _run_cell_shielded,
    _spawn_is_safe,
    cell_key,
)

__all__ = [
    "available_cpus",
    "execute_cells",
    "make_backend",
    "SerialBackend",
    "PoolBackend",
    "QueueBackend",
    "queue_worker_loop",
    "DEFAULT_QUEUE_DIR",
    "BACKEND_NAMES",
]

#: Default queue location for the CLI (relative to the working directory).
DEFAULT_QUEUE_DIR = ".repro-queue"

#: Backend names accepted by :func:`make_backend` / ``--backend``.
BACKEND_NAMES = ("serial", "pool", "queue")

#: ``(status, payload)`` — ``("ok", report_or_segment)`` or
#: ``("err", (cell_description, exception_repr, traceback_text))``.
Outcome = Tuple[str, object]


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.sched_getaffinity`` respects cgroup/affinity masks (a container
    pinned to 1 of 64 cores answers 1, not 64); platforms without it
    fall back to ``os.cpu_count()``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


class SerialBackend:
    """Run every cell in-process, in order — the reference backend."""

    name = "serial"
    needs_keys = False

    def run(self, cells: Sequence[EvalCell],
            keys: Optional[Sequence[str]] = None) -> List[Outcome]:
        return [_run_cell_shielded(cell) for cell in cells]


class PoolBackend:
    """Shard cells over a ``spawn`` process pool on this machine.

    ``workers=None`` resolves to :func:`available_cpus` at run time.
    Single cells, ``workers=1``, and stdin scripts (whose ``__main__``
    spawn children cannot re-import) fall back to the serial path with
    the same semantics the pre-backend ``run_cells`` had.
    """

    name = "pool"
    needs_keys = False

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(self, cells: Sequence[EvalCell],
            keys: Optional[Sequence[str]] = None) -> List[Outcome]:
        workers = self.workers if self.workers is not None else available_cpus()
        if workers > 1 and len(cells) > 1 and not _spawn_is_safe():
            warnings.warn(
                "__main__ is not importable by spawned workers (stdin "
                "script?); running evaluation cells serially",
                RuntimeWarning, stacklevel=2)
            workers = 1
        if workers == 1 or len(cells) <= 1:
            return SerialBackend().run(cells)
        _check_picklable(cells)
        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=min(workers, len(cells))) as pool:
            return pool.map(_run_cell_shielded, list(cells))


class _QueueDir:
    """Layout and atomic file operations of a shared queue directory.

    ``tasks/<key>.task`` (pickled cell), ``claims/<key>.claim`` (lease;
    content names the holder, mtime is the heartbeat), and
    ``results/<key>.json`` (outcome envelope) — ``<key>`` is the cell's
    cache fingerprint, so task identity, claim identity, and result
    identity all content-address the same computation. ``BATCH.json``
    at the root publishes the key list of the batch being reduced;
    workers use it to know when they are done.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.tasks = self.root / "tasks"
        self.claims = self.root / "claims"
        self.results = self.root / "results"
        self.batch_path = self.root / "BATCH.json"

    def ensure(self) -> None:
        for d in (self.tasks, self.claims, self.results):
            d.mkdir(parents=True, exist_ok=True)

    # --- atomic JSON/pickle writes (shared helper) ----------------------
    def _write_atomic(self, path: Path, data: bytes) -> None:
        atomic_write_bytes(path, data)

    # --- tasks ----------------------------------------------------------
    def task_path(self, key: str) -> Path:
        return self.tasks / f"{key}.task"

    def write_task(self, key: str, cell: EvalCell) -> None:
        self._write_atomic(self.task_path(key), pickle.dumps(cell))

    def load_task(self, key: str) -> EvalCell:
        with open(self.task_path(key), "rb") as fh:
            return pickle.load(fh)

    # --- batch manifest -------------------------------------------------
    def write_batch(self, keys: Sequence[str]) -> None:
        self._write_atomic(
            self.batch_path,
            json.dumps({"cells": list(keys)}, sort_keys=True).encode())

    def batch_keys(self) -> Optional[List[str]]:
        try:
            with open(self.batch_path, encoding="utf-8") as fh:
                payload = json.load(fh)
            return [str(k) for k in payload["cells"]]
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # --- claims (leases) ------------------------------------------------
    def claim_path(self, key: str) -> Path:
        return self.claims / f"{key}.claim"

    def try_claim(self, key: str, worker_id: str,
                  lease_timeout: float) -> bool:
        """Atomically lease ``key``; reclaim first if the holder's
        heartbeat is older than ``lease_timeout`` seconds.

        The reclaim (unlink + exclusive re-create) can race: two workers
        may both unlink a stale claim and one loses the re-create — or,
        pathologically, both briefly hold a lease. That worst case is a
        duplicate *recompute* of a deterministic cell whose result
        writes are atomic and byte-identical, never corruption.
        """
        path = self.claim_path(key)

        def create() -> bool:
            try:
                # The claim *is* the O_EXCL creation: exactly one worker
                # may win, so an atomic-replace write (which always
                # succeeds) would break the mutual exclusion.
                # repro: allow[ATOM001]
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps({"worker": worker_id, "pid": os.getpid(),
                                     "host": socket.gethostname()},
                                    sort_keys=True))
            return True

        if create():
            return True
        try:
            age = time.time() - os.stat(path).st_mtime
        except OSError:
            return create()         # holder released between open and stat
        if age > lease_timeout:
            try:
                os.unlink(path)
            except OSError:
                pass
            return create()
        return False

    def release(self, key: str) -> None:
        try:
            os.unlink(self.claim_path(key))
        except OSError:
            pass

    @contextmanager
    def lease_heartbeat(self, key: str, interval: float):
        """Refresh the claim's mtime every ``interval`` seconds from a
        daemon thread while the body runs, so a live worker's lease
        never goes stale however long its cell simulates."""
        if interval <= 0:
            yield
            return
        path = self.claim_path(key)
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    os.utime(path)
                except OSError:
                    return          # claim reclaimed under us; stop beating
        thread = threading.Thread(target=beat, daemon=True)
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join()

    # --- results ---------------------------------------------------------
    def result_path(self, key: str) -> Path:
        return self.results / f"{key}.json"

    def has_result(self, key: str) -> bool:
        return self.result_path(key).is_file()

    def write_result(self, key: str, outcome: Outcome) -> None:
        status, payload = outcome
        if status == "ok":
            doc = {"status": "ok", "result": encode_result(payload)}
        else:
            desc, err, tb = payload
            doc = {"status": "err", "failure": [desc, err, tb]}
        self._write_atomic(self.result_path(key),
                           json.dumps(doc, sort_keys=True).encode())

    def read_result(self, key: str) -> Outcome:
        with open(self.result_path(key), encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("status") == "ok":
            return "ok", decode_result(doc["result"])
        desc, err, tb = doc["failure"]
        return "err", (desc, err, tb)

    def cleanup_batch(self, keys: Sequence[str]) -> None:
        """Retire a reduced batch: manifest first (so late workers see
        no work and exit), then this batch's task/claim/result files."""
        try:
            os.unlink(self.batch_path)
        except OSError:
            pass
        for key in keys:
            for path in (self.task_path(key), self.claim_path(key),
                         self.result_path(key)):
                try:
                    os.unlink(path)
                except OSError:
                    pass


def queue_worker_loop(
    queue_dir: os.PathLike,
    worker_id: Optional[str] = None,
    lease_timeout: float = 60.0,
    heartbeat: float = 5.0,
    poll: float = 0.2,
    max_idle: Optional[float] = None,
    handle_signals: bool = False,
) -> int:
    """Claim-execute-write until the published batch has every result.

    The entry point for queue workers, local (spawned by
    :class:`QueueBackend`) and external (``repro.cli worker``) alike.
    Returns the number of cells this worker computed.

    Exits when the batch is complete (even if other workers computed
    everything), or — with ``max_idle`` set — after that many seconds
    without claiming anything (covers joining before a batch is
    published, or a dead driver). Without ``max_idle``, an absent batch
    returns immediately rather than spinning.

    ``handle_signals`` converts SIGTERM/SIGINT into ``SystemExit`` so an
    orderly kill releases the in-flight claim (the per-cell ``finally``
    deletes the ``.claim`` file) instead of parking it until the lease
    times out. SystemExit deliberately passes through the cell shield —
    only the lease-timeout path covers ``kill -9``.
    """
    previous_handlers = {}
    if handle_signals:
        def _on_signal(signum, frame):
            raise SystemExit(128 + signum)

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous_handlers[sig] = signal.signal(sig, _on_signal)
            except ValueError:
                pass  # not the main thread; rely on lease timeout
    try:
        return _queue_worker_loop(q=_QueueDir(queue_dir),
                                  worker_id=worker_id,
                                  lease_timeout=lease_timeout,
                                  heartbeat=heartbeat, poll=poll,
                                  max_idle=max_idle)
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)


def _queue_worker_loop(q: "_QueueDir", worker_id: Optional[str],
                       lease_timeout: float, heartbeat: float,
                       poll: float, max_idle: Optional[float]) -> int:
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    q.ensure()
    completed = 0
    idle_since = time.monotonic()
    while True:
        keys = q.batch_keys()
        if keys is None:
            if max_idle is None or time.monotonic() - idle_since > max_idle:
                return completed
            time.sleep(poll)
            continue
        missing = [k for k in keys if not q.has_result(k)]
        if not missing:
            return completed
        progressed = False
        for key in missing:
            if q.has_result(key) or \
                    not q.try_claim(key, worker_id, lease_timeout):
                continue
            try:
                if q.has_result(key):
                    continue        # finished by the lease's previous holder
                try:
                    cell = q.load_task(key)
                except (OSError, pickle.UnpicklingError, EOFError):
                    continue        # batch retired under us; re-check manifest
                with q.lease_heartbeat(key, heartbeat):
                    outcome = _run_cell_shielded(cell)
                q.write_result(key, outcome)
                completed += 1
                progressed = True
            finally:
                q.release(key)
        if progressed:
            idle_since = time.monotonic()
        elif max_idle is not None and \
                time.monotonic() - idle_since > max_idle:
            return completed
        else:
            time.sleep(poll)


class QueueBackend:
    """Distribute cells through a shared-directory work queue.

    ``workers`` local worker processes are spawned against ``queue_dir``
    (0 = rely entirely on external joiners — ``repro.cli worker`` from
    any process or host sharing the filesystem). The driver publishes
    the batch, waits for the shared result store to fill, reduces in
    deterministic cell order, and retires the batch. If every local
    worker dies with work outstanding, their leases go stale and the
    driver reclaims and drains the remainder inline, so a killed worker
    delays a batch but never loses it.

    ``wait_timeout`` bounds the wait for external progress (``None`` =
    wait forever); it only trips when no local worker is alive to make
    progress.
    """

    name = "queue"
    needs_keys = True

    def __init__(
        self,
        queue_dir: os.PathLike = DEFAULT_QUEUE_DIR,
        workers: int = 2,
        lease_timeout: float = 60.0,
        heartbeat: float = 5.0,
        poll: float = 0.05,
        wait_timeout: Optional[float] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = external only)")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self.queue_dir = Path(queue_dir)
        self.workers = workers
        self.lease_timeout = lease_timeout
        self.heartbeat = heartbeat
        self.poll = poll
        self.wait_timeout = wait_timeout

    def run(self, cells: Sequence[EvalCell],
            keys: Optional[Sequence[str]] = None) -> List[Outcome]:
        if not cells:
            return []
        if keys is None:
            keys = [cell_key(cell) for cell in cells]
        _check_picklable(cells)
        q = _QueueDir(self.queue_dir)
        q.ensure()
        # Dedupe by fingerprint: identical cells are one task, and a
        # result already present (a previous batch raced ahead, or an
        # external writer) is reused as-is — recomputing it would
        # produce the same bytes.
        unique: Dict[str, EvalCell] = {}
        for key, cell in zip(keys, cells):
            if key not in unique:
                unique[key] = cell
        for key, cell in unique.items():
            if not q.has_result(key):
                q.write_task(key, cell)
        q.write_batch(list(unique))

        n_local = self.workers
        if n_local > 0 and not _spawn_is_safe():
            warnings.warn(
                "__main__ is not importable by spawned workers (stdin "
                "script?); draining the queue in-process",
                RuntimeWarning, stacklevel=2)
            n_local = 0
        procs = []
        ctx = mp.get_context("spawn")
        for i in range(n_local):
            proc = ctx.Process(
                target=queue_worker_loop,
                kwargs=dict(queue_dir=str(self.queue_dir),
                            worker_id=f"local-{i}",
                            lease_timeout=self.lease_timeout,
                            heartbeat=self.heartbeat, poll=self.poll,
                            handle_signals=True),
                daemon=True)
            proc.start()
            procs.append(proc)
        if n_local == 0 and self.workers > 0:
            # Spawn-unsafe fallback: drain inline (leases of dead owners
            # are irrelevant here; nothing else is running locally).
            queue_worker_loop(self.queue_dir, worker_id="driver",
                              lease_timeout=self.lease_timeout,
                              heartbeat=self.heartbeat, poll=self.poll)

        deadline = None if self.wait_timeout is None \
            else time.monotonic() + self.wait_timeout
        try:
            while True:
                missing = [k for k in unique if not q.has_result(k)]
                if not missing:
                    break
                if procs and not any(p.is_alive() for p in procs):
                    # Every local worker exited with work outstanding
                    # (crash/kill): any lease they held stops
                    # heartbeating, so reclaim-by-staleness applies.
                    # Drain the remainder inline and re-check.
                    queue_worker_loop(
                        self.queue_dir, worker_id="driver-drain",
                        lease_timeout=self.lease_timeout,
                        heartbeat=self.heartbeat, poll=self.poll,
                        max_idle=max(4 * self.lease_timeout, 1.0))
                    procs = []
                    continue
                if deadline is not None and time.monotonic() > deadline:
                    raise RuntimeError(
                        f"queue backend timed out after "
                        f"{self.wait_timeout}s with {len(missing)} cells "
                        f"outstanding in {self.queue_dir}; join workers "
                        f"with: python -m repro.cli worker --queue-dir "
                        f"{self.queue_dir}")
                time.sleep(self.poll)
            outcomes = [q.read_result(key) for key in keys]
        finally:
            for proc in procs:
                proc.join(timeout=10.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=10.0)
        q.cleanup_batch(list(unique))
        return outcomes


def make_backend(
    spec: str,
    workers: Optional[int] = None,
    queue_dir: Optional[os.PathLike] = None,
    lease_timeout: float = 60.0,
    wait_timeout: Optional[float] = None,
):
    """Resolve a ``--backend`` name to a backend instance.

    ``workers`` means pool size for ``pool`` and local worker-process
    count for ``queue`` (0 = external workers only); ``serial`` ignores
    it. ``queue_dir`` defaults to :data:`DEFAULT_QUEUE_DIR`.
    """
    if spec == "serial":
        return SerialBackend()
    if spec == "pool":
        return PoolBackend(workers)
    if spec == "queue":
        return QueueBackend(
            queue_dir=queue_dir if queue_dir is not None else DEFAULT_QUEUE_DIR,
            workers=workers if workers is not None else 2,
            lease_timeout=lease_timeout,
            wait_timeout=wait_timeout)
    raise ValueError(
        f"unknown backend {spec!r}; choose from {', '.join(BACKEND_NAMES)}")


def execute_cells(
    cells: Sequence[EvalCell],
    backend=None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
):
    """Evaluate every cell through a backend; results in cell order.

    The scheduling/merge contract formerly inside ``run_cells``: probe
    the cache, run only the misses, write every successful result back
    *before* surfacing the first failure (so a retry after fixing one
    bad cell replays the rest from cache), and return cell ``i``'s
    result at index ``i`` regardless of backend, worker count, or
    hit/miss split.

    ``backend`` may be a backend instance, a :data:`BACKEND_NAMES`
    string, or ``None`` — which keeps the legacy dispatch: serial for
    ``workers == 1``, the spawn pool otherwise.
    """
    if isinstance(backend, str):
        backend = make_backend(backend, workers=workers)
    if backend is None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        backend = SerialBackend() if workers == 1 else PoolBackend(workers)

    results: List[Optional[object]] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    todo: List[int] = []
    want_keys = cache is not None or getattr(backend, "needs_keys", False)
    for i, cell in enumerate(cells):
        if want_keys:
            keys[i] = cell_key(cell)
        if cache is not None:
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                continue
        todo.append(i)

    if todo:
        pending = [cells[i] for i in todo]
        pending_keys = [keys[i] for i in todo] if want_keys else None
        outcomes = backend.run(pending, keys=pending_keys)
        failure: Optional[CellFailure] = None
        for i, outcome in zip(todo, outcomes):
            if outcome[0] != "ok":
                if failure is None:
                    failure = _failure_error(outcome)
                continue
            results[i] = outcome[1]
            if cache is not None and keys[i] is not None:
                cache.put(keys[i], results[i])
        if failure is not None:
            if cache is not None:
                cache.flush_counters()
            raise failure
    if cache is not None:
        cache.flush_counters()
    return results
