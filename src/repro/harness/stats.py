"""Statistical machinery for experiment claims.

Every "A beats B" statement in EXPERIMENTS.md should survive trace
noise. This module provides the two tools the suite uses:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval of a
  mean over per-trace metric values;
* :func:`paired_permutation_test` — sign-flip permutation test on
  paired per-trace differences (the traces are paired across schedulers
  by construction, so the paired test is the right one).

Both are exact-seeded (explicit ``Generator``) and vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["MeanCI", "bootstrap_ci", "paired_permutation_test", "summarize"]


@dataclass(frozen=True)
class MeanCI:
    """A point estimate with a confidence interval."""

    mean: float
    lo: float
    hi: float
    level: float

    def overlaps(self, other: "MeanCI") -> bool:
        """Whether the two intervals intersect."""
        return self.lo <= other.hi and other.lo <= self.hi

    def __str__(self) -> str:
        return f"{self.mean:.4f} [{self.lo:.4f}, {self.hi:.4f}]"


def bootstrap_ci(
    values: Sequence[float],
    level: float = 0.95,
    n_boot: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> MeanCI:
    """Percentile-bootstrap CI for the mean of ``values``.

    With a single observation the interval degenerates to the point.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    mean = float(x.mean())
    if x.size == 1:
        return MeanCI(mean, mean, mean, level)
    # Default fixed resample stream: CIs quoted in artifacts must be
    # identical on every rebuild; callers needing independent resamples
    # pass their own generator.
    # repro: allow[DET001]
    rng = rng if rng is not None else np.random.default_rng(0)
    idx = rng.integers(0, x.size, size=(n_boot, x.size))
    boots = x[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(boots, [alpha, 1.0 - alpha])
    return MeanCI(mean, float(lo), float(hi), level)


def paired_permutation_test(
    a: Sequence[float],
    b: Sequence[float],
    n_perm: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Two-sided sign-flip permutation p-value for mean(a - b) != 0.

    ``a`` and ``b`` are per-trace metrics of two schedulers on the *same*
    traces (paired). Small p => the difference is unlikely under the
    exchange-null. With all-zero differences returns 1.0.
    """
    da = np.asarray(a, dtype=float)
    db = np.asarray(b, dtype=float)
    if da.shape != db.shape or da.size == 0:
        raise ValueError("a and b must be non-empty and aligned")
    diff = da - db
    observed = abs(diff.mean())
    if observed == 0.0:
        return 1.0
    # Same fixed-stream contract as bootstrap_ci: published p-values
    # must not drift between reruns.
    # repro: allow[DET001]
    rng = rng if rng is not None else np.random.default_rng(0)
    signs = rng.choice([-1.0, 1.0], size=(n_perm, diff.size))
    null = np.abs((signs * diff).mean(axis=1))
    # Add-one correction keeps the p-value away from an impossible 0.
    return float((np.sum(null >= observed - 1e-15) + 1) / (n_perm + 1))


def summarize(
    values: Sequence[float],
    level: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float, float]:
    """(mean, ci_lo, ci_hi) convenience wrapper around :func:`bootstrap_ci`."""
    ci = bootstrap_ci(values, level=level, rng=rng)
    return ci.mean, ci.lo, ci.hi
