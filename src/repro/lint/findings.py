"""Finding records emitted by the determinism-contract linter."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["SEVERITIES", "Finding"]

#: Recognized severities, most severe first. Both fail the lint gate —
#: a ``warning`` marks a site that may be *correct by contract* (e.g. a
#: deliberately fixed RNG seed) but must say so in an inline waiver.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Ordering is (path, line, col, rule_id) so reports are deterministic.
    Baseline identity (:meth:`key`) deliberately excludes the line
    number: grandfathered findings should not churn when unrelated
    edits shift a file.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, "
                             f"got {self.severity!r}")

    def key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.rule_id, self.path, self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} {self.severity}: {self.message}")
