"""Determinism-contract linter (``repro.cli lint``).

AST-based static analysis enforcing the invariants the rest of the repo
is built on: seeded RNG threaded from configuration (DET001), sorted
filesystem enumeration (DET002), wall-clock confinement (DET003),
no ordered output derived from set iteration (DET004), atomic canonical
writes into managed state dirs (ATOM001), and a complete snapshot
surface (SNAP001). See ARCHITECTURE.md for the rule table and the
waiver/baseline workflow.
"""

from repro.lint.autofix import FIXABLE_RULES, fix_file, fix_source
from repro.lint.baseline import (
    BASELINE_FORMAT,
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.findings import SEVERITIES, Finding
from repro.lint.framework import (
    FileContext,
    FileRule,
    LintResult,
    ProjectRule,
    iter_python_files,
    lint_file,
    lint_paths,
    module_key,
    register,
    resolve_rules,
    rule_registry,
)
from repro.lint.report import render_json, render_text, summarize
from repro.lint.snapshot_surface import check_snapshot_surface
from repro.lint.waivers import collect_waivers

__all__ = [
    "SEVERITIES",
    "Finding",
    "FileContext",
    "FileRule",
    "ProjectRule",
    "LintResult",
    "register",
    "rule_registry",
    "resolve_rules",
    "iter_python_files",
    "module_key",
    "lint_file",
    "lint_paths",
    "collect_waivers",
    "check_snapshot_surface",
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "render_text",
    "render_json",
    "summarize",
    "FIXABLE_RULES",
    "fix_source",
    "fix_file",
]
