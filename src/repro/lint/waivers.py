"""Inline waiver comments: ``# repro: allow[RULE]``.

A waiver acknowledges a finding as *correct by contract* at that exact
site — a deliberately fixed RNG stream, an ``O_CREAT | O_EXCL`` lock
file that must not be written through the atomic-rename helper. Waivers
carry their justification in the surrounding comment, so the contract
stays reviewable where the code is.

Syntax (one or more rule ids, comma separated)::

    age = time.time() - start  # repro: allow[DET003] lease staleness is wall-clock
    # repro: allow[DET001,DET003] -- fixed stream is the artifact contract
    rng = np.random.default_rng(0)

A trailing waiver applies to its own (logical) line. A standalone
comment line applies to the next non-blank, non-comment line, so
long call expressions can be waived without overflowing the line.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

__all__ = ["WAIVER_RE", "collect_waivers"]

WAIVER_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\]")


def collect_waivers(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids waived on that line.

    Tokenizes rather than regex-scanning raw lines so a waiver-shaped
    substring inside a string literal is never treated as a waiver.
    Unreadable source (tokenize errors) yields no waivers — the caller
    will surface the parse failure separately.
    """
    waivers: Dict[int, Set[str]] = {}
    standalone: list = []  # (line, rules) for comment-only lines
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return waivers
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = WAIVER_RE.search(tok.string)
        if match is None:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        line = tok.start[0]
        waivers.setdefault(line, set()).update(rules)
        text = lines[line - 1] if line <= len(lines) else ""
        if text.lstrip().startswith("#"):
            standalone.append((line, rules))
    # A standalone waiver comment also covers the next code line.
    for line, rules in standalone:
        for nxt in range(line + 1, len(lines) + 1):
            text = lines[nxt - 1].strip()
            if not text or text.startswith("#"):
                continue
            waivers.setdefault(nxt, set()).update(rules)
            break
    return waivers
