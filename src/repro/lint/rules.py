"""Per-file determinism-contract rules (DET001–DET004, ATOM001).

Each rule is a small ``ast.NodeVisitor`` registered with the framework.
Rules resolve call targets through the file's import aliases (``import
numpy as np`` makes ``np.random.default_rng`` and
``numpy.random.default_rng`` the same site), so renaming an import
cannot smuggle a violation past the gate.

The contracts being enforced (see ARCHITECTURE.md):

* **DET001** — randomness must flow from an explicit, threaded seed.
  Unseeded generators and module-global RNG state are errors; a
  hard-coded literal seed is a *warning* that must either be threaded
  from configuration or waived with a comment explaining why the fixed
  stream is itself the contract (e.g. a published artifact).
* **DET002** — filesystem enumeration order is not part of any
  contract; every ``listdir``/``iterdir``/``glob`` feeding program
  logic must pass through ``sorted(...)``.
* **DET003** — simulated time is the only clock. Wall-clock reads are
  confined to an allowlist of measurement modules (latency recorder,
  lease heartbeats, experiment wall-time).
* **DET004** — iterating a set yields hash-seed-dependent order;
  anything ordered derived from a set must sort first.
* **ATOM001** — modules that write into managed state directories
  (cache, queue, policy store, serve checkpoints) must route durable
  writes through :mod:`repro.util.io` and emit canonical
  (``sort_keys``) JSON.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.lint.framework import FileContext, FileRule, register

__all__ = [
    "build_aliases",
    "dotted_name",
    "is_sorted_wrapped",
    "fs_iteration_target",
    "is_set_valued",
    "atom001_in_scope",
    "json_dump_without_sort_keys",
    "MANAGED_DIR_MARKERS",
    "DET003_ALLOWLIST",
]


def build_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> canonical dotted prefix, from the file's imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}")
    return aliases


def dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of an attribute chain rooted at a Name.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``. Returns None for anything not a plain
    Name/Attribute chain (subscripts, call results, lambdas).
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def is_sorted_wrapped(node: ast.AST) -> bool:
    """True if ``node`` sits (at any depth) inside a ``sorted(...)``
    call within the same statement — ``sorted(d.iterdir())`` and
    ``sorted(p.name for p in d.iterdir())`` both qualify.
    """
    parent = getattr(node, "repro_parent", None)
    while parent is not None and not isinstance(parent, ast.stmt):
        if (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted"):
            return True
        parent = getattr(parent, "repro_parent", None)
    return False


# ---------------------------------------------------------------------------
# DET001 — unseeded / global RNG
# ---------------------------------------------------------------------------

_NUMPY_GLOBAL_RNG = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "poisson", "exponential", "binomial",
})

_STDLIB_GLOBAL_RNG = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "betavariate",
    "expovariate", "getrandbits",
})

_SEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
})


def _literal_seed(call: ast.Call) -> Optional[object]:
    """The literal seed constant passed to an RNG constructor, if any."""
    candidates = list(call.args[:1])
    candidates.extend(kw.value for kw in call.keywords
                      if kw.arg == "seed")
    for expr in candidates:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return expr.value
        if (isinstance(expr, ast.UnaryOp)
                and isinstance(expr.operand, ast.Constant)):
            return expr.operand.value
    return None


@register
class UnseededRNGRule(FileRule):
    rule_id = "DET001"
    description = ("RNG must be an explicitly seeded generator threaded "
                   "from configuration; no global RNG state, no "
                   "unjustified literal seeds.")

    def visitor(self, ctx: FileContext) -> ast.NodeVisitor:
        rule = self
        aliases = build_aliases(ctx.tree)

        class Visitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                full = dotted_name(node.func, aliases)
                if full is None:
                    self.generic_visit(node)
                    return
                if full in _SEEDED_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        ctx.add(rule.rule_id, node, "error",
                                f"unseeded RNG: {full}() without a seed "
                                "— thread an explicit seed from "
                                "configuration")
                    elif _literal_seed(node) is not None:
                        ctx.add(rule.rule_id, node, "warning",
                                f"hard-coded literal seed "
                                f"{_literal_seed(node)} in {full}(); "
                                "thread the seed from configuration or "
                                "waive with a comment explaining why the "
                                "fixed stream is the contract")
                elif (full.startswith("numpy.random.")
                        and full.rsplit(".", 1)[1] in _NUMPY_GLOBAL_RNG):
                    ctx.add(rule.rule_id, node, "error",
                            f"{full}() mutates/reads global numpy RNG "
                            "state; use a seeded Generator passed from "
                            "the caller")
                elif (full.startswith("random.")
                        and full.rsplit(".", 1)[1] in _STDLIB_GLOBAL_RNG):
                    ctx.add(rule.rule_id, node, "error",
                            f"{full}() uses the process-global stdlib "
                            "RNG; use a seeded random.Random or numpy "
                            "Generator passed from the caller")
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------------
# DET002 — unsorted filesystem iteration
# ---------------------------------------------------------------------------

_FS_MODULE_FUNCS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

_FS_PATH_METHODS = frozenset({"iterdir", "glob", "rglob"})


def fs_iteration_target(node: ast.Call,
                        aliases: Dict[str, str]) -> Optional[str]:
    """Display name of the fs-enumeration call, or None if not one."""
    full = dotted_name(node.func, aliases)
    if full in _FS_MODULE_FUNCS:
        return full
    if (isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_PATH_METHODS):
        return f"Path.{node.func.attr}"
    return None


@register
class UnsortedFSIterationRule(FileRule):
    rule_id = "DET002"
    description = ("Filesystem enumeration (os.listdir, Path.iterdir, "
                   "glob) must be wrapped in sorted(...) — directory "
                   "order is not deterministic.")
    fixable = True

    def visitor(self, ctx: FileContext) -> ast.NodeVisitor:
        rule = self
        aliases = build_aliases(ctx.tree)

        class Visitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                target = fs_iteration_target(node, aliases)
                if target is not None and not is_sorted_wrapped(node):
                    ctx.add(rule.rule_id, node, "error",
                            f"{target}(...) enumeration order is "
                            "filesystem-dependent; wrap in sorted(...)")
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------------
# DET003 — wall-clock reads outside measurement modules
# ---------------------------------------------------------------------------

#: Modules whose *job* is measuring real time: the serve latency
#: recorder and trace replayer, queue lease heartbeats/staleness in the
#: executor, and experiment wall-time accounting. Everything else must
#: run on simulated time.
DET003_ALLOWLIST = frozenset({
    "repro/serve/latency.py",
    "repro/serve/replay.py",
    "repro/harness/executor.py",
    "repro/harness/experiments.py",
})

_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register
class WallClockRule(FileRule):
    rule_id = "DET003"
    description = ("Wall-clock reads (time.time, datetime.now) are "
                   "confined to the measurement-module allowlist; "
                   "simulation logic runs on simulated time only.")

    def visitor(self, ctx: FileContext) -> Optional[ast.NodeVisitor]:
        if ctx.module in DET003_ALLOWLIST:
            return None
        rule = self
        aliases = build_aliases(ctx.tree)

        class Visitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                full = dotted_name(node.func, aliases)
                if full in _WALLCLOCK_CALLS:
                    ctx.add(rule.rule_id, node, "error",
                            f"{full}() reads the wall clock outside the "
                            "measurement-module allowlist; use simulated "
                            "time, or waive if this is a genuine "
                            "measurement site")
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------------
# DET004 — iterating a set where order can leak into output
# ---------------------------------------------------------------------------

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


def is_set_valued(expr: ast.AST, aliases: Dict[str, str]) -> bool:
    """True for expressions that are sets by construction."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        full = dotted_name(expr.func, aliases)
        if full in ("set", "frozenset"):
            return True
        if (isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _SET_METHODS):
            return True
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (is_set_valued(expr.left, aliases)
                or is_set_valued(expr.right, aliases))
    return False


@register
class SetIterationRule(FileRule):
    rule_id = "DET004"
    description = ("Iterating a set yields hash-seed-dependent order; "
                   "sort before any ordered consumption.")
    fixable = True

    def visitor(self, ctx: FileContext) -> ast.NodeVisitor:
        rule = self
        aliases = build_aliases(ctx.tree)

        def check_iter(iter_expr: ast.AST) -> None:
            if (is_set_valued(iter_expr, aliases)
                    and not is_sorted_wrapped(iter_expr)):
                ctx.add(rule.rule_id, iter_expr, "error",
                        "iteration over a set-valued expression has "
                        "hash-seed-dependent order; wrap in sorted(...)")

        class Visitor(ast.NodeVisitor):
            def visit_For(self, node: ast.For) -> None:
                check_iter(node.iter)
                self.generic_visit(node)

            def visit_comprehension(self,
                                    node: ast.comprehension) -> None:
                check_iter(node.iter)
                self.generic_visit(node)

        return Visitor()


# ---------------------------------------------------------------------------
# ATOM001 — durable writes into managed state dirs
# ---------------------------------------------------------------------------

#: A file is in ATOM001 scope when its source mentions one of the
#: managed on-disk locations. Content-marker scoping (rather than a
#: hard-coded module list) means a new module that starts writing into
#: the cache or queue directory is pulled into scope automatically.
MANAGED_DIR_MARKERS = (
    ".repro-cache",
    ".repro-queue",
    ".repro-policies",
    ".repro-serve",
    ".repro-fuzz",
    "CHECKPOINT.json",
    "STATS.json",
    "BATCH.json",
)

#: The helper itself and this linter are outside scope: io.py *is* the
#: sanctioned implementation, and lint modules quote the markers.
_ATOM_EXEMPT_PREFIXES = ("repro/util/", "repro/lint/")

_WRITE_MODES = ("w", "a")


def atom001_in_scope(module: str, source: str) -> bool:
    if module.startswith(_ATOM_EXEMPT_PREFIXES):
        return False
    return any(marker in source for marker in MANAGED_DIR_MARKERS)


def _open_write_mode(call: ast.Call) -> Optional[str]:
    """The literal write mode of an ``open(...)`` call, or None."""
    mode_expr: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode_expr = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_expr = kw.value
    if (isinstance(mode_expr, ast.Constant)
            and isinstance(mode_expr.value, str)
            and mode_expr.value.rstrip("b+t").startswith(_WRITE_MODES)):
        return mode_expr.value
    return None


def json_dump_without_sort_keys(call: ast.Call,
                                aliases: Dict[str, str]) -> bool:
    """True for ``json.dump``/``json.dumps`` lacking a sort_keys kwarg."""
    full = dotted_name(call.func, aliases)
    if full not in ("json.dump", "json.dumps"):
        return False
    return not any(kw.arg == "sort_keys" for kw in call.keywords)


def _has_o_creat(call: ast.Call, aliases: Dict[str, str]) -> bool:
    for arg in ast.walk(ast.Module(body=[ast.Expr(value=call)],
                                   type_ignores=[])):
        if (isinstance(arg, ast.Attribute)
                and arg.attr in ("O_CREAT", "O_EXCL")):
            return True
    return False


@register
class AtomicWriteRule(FileRule):
    rule_id = "ATOM001"
    description = ("Writes into managed state dirs (.repro-cache, "
                   ".repro-queue, .repro-policies, .repro-serve) must "
                   "route through repro.util.io and emit sort_keys "
                   "canonical JSON.")
    fixable = True  # the sort_keys insertion is mechanical

    def visitor(self, ctx: FileContext) -> Optional[ast.NodeVisitor]:
        if not atom001_in_scope(ctx.module, ctx.source):
            return None
        rule = self
        aliases = build_aliases(ctx.tree)

        class Visitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                full = dotted_name(node.func, aliases)
                if full in ("tempfile.mkstemp", "os.replace"):
                    ctx.add(rule.rule_id, node, "error",
                            f"hand-rolled atomic write ({full}); route "
                            "through repro.util.io.atomic_writer / "
                            "atomic_write_json")
                elif full == "os.open" and _has_o_creat(node, aliases):
                    ctx.add(rule.rule_id, node, "error",
                            "direct os.open(O_CREAT...) in a managed "
                            "state dir; use repro.util.io, or waive if "
                            "this is an O_EXCL lock/claim file whose "
                            "creation must NOT be an atomic replace")
                elif full == "open" and _open_write_mode(node):
                    ctx.add(rule.rule_id, node, "error",
                            "non-atomic open(..., "
                            f"{_open_write_mode(node)!r}) write in a "
                            "module managing durable state; use "
                            "repro.util.io.atomic_write_text/json")
                elif json_dump_without_sort_keys(node, aliases):
                    ctx.add(rule.rule_id, node, "error",
                            f"{full}(...) without sort_keys in a "
                            "canonical writer; pass sort_keys=True so "
                            "artifact bytes are independent of dict "
                            "construction order")
                self.generic_visit(node)

        return Visitor()
