"""AST-walking analysis framework for the determinism-contract linter.

Two rule shapes plug into one registry:

* **File rules** (:class:`FileRule`) contribute an ``ast.NodeVisitor``
  per file. The framework parses each file once, annotates every node
  with its parent (``node.repro_parent``), runs all requested visitors,
  then filters findings through the file's inline waivers
  (:mod:`repro.lint.waivers`).
* **Project rules** (:class:`ProjectRule`) run once per lint invocation
  over the full file set — for cross-module contracts like the
  snapshot-surface check (``SNAP001``), whose truth lives in three
  files at once.

Everything is deterministic: files are visited in sorted order,
findings are reported in (path, line, col, rule) order, and no rule
consults wall-clock, environment, or randomness — the linter holds
itself to the contracts it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.findings import Finding
from repro.lint.waivers import collect_waivers

__all__ = [
    "FileContext",
    "FileRule",
    "ProjectRule",
    "LintResult",
    "register",
    "rule_registry",
    "resolve_rules",
    "iter_python_files",
    "module_key",
    "annotate_parents",
    "lint_file",
    "lint_paths",
]


def module_key(path: Path) -> str:
    """Repo-normalized module path: the suffix from the last ``repro``
    package component (``repro/harness/cache.py``), or the bare file
    name for files outside the package (test fixtures).

    Rules scope on this key, so the same source file lints identically
    from any checkout location.
    """
    parts = path.as_posix().split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return parts[-1]


@dataclass
class FileContext:
    """Everything a file rule's visitor needs about the current file."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.AST
    findings: List[Finding] = field(default_factory=list)

    def add(self, rule_id: str, node: ast.AST, severity: str,
            message: str) -> None:
        self.findings.append(Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            severity=severity,
            message=message,
        ))


class FileRule:
    """Base class for per-file AST rules."""

    rule_id: str = ""
    description: str = ""
    #: Rule ids whose findings :mod:`repro.lint.autofix` can rewrite.
    fixable: bool = False

    def visitor(self, ctx: FileContext) -> Optional[ast.NodeVisitor]:
        """A visitor over ``ctx.tree``, or None to skip this file."""
        raise NotImplementedError


class ProjectRule:
    """Base class for cross-module rules run once per invocation."""

    rule_id: str = ""
    description: str = ""
    fixable: bool = False

    def check(self, files: Sequence[Path],
              display: Dict[Path, str]) -> List[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, object] = {}


def register(rule_cls):
    """Class decorator adding a rule instance to the global registry."""
    rule = rule_cls()
    if not rule.rule_id:
        raise ValueError(f"{rule_cls.__name__} must define rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def rule_registry() -> Dict[str, object]:
    """rule_id -> rule instance, importing the built-in rule modules."""
    # Importing registers via the @register decorator; idempotent.
    import repro.lint.rules  # noqa: F401
    import repro.lint.snapshot_surface  # noqa: F401

    return dict(sorted(_REGISTRY.items()))


def resolve_rules(names: Optional[Iterable[str]] = None) -> Dict[str, object]:
    """Subset the registry by rule id; unknown names raise ValueError."""
    registry = rule_registry()
    if names is None:
        return registry
    wanted = {}
    for name in names:
        name = name.strip()
        if not name:
            continue
        if name not in registry:
            known = ", ".join(registry)
            raise ValueError(f"unknown lint rule {name!r}; known rules: {known}")
        wanted[name] = registry[name]
    if not wanted:
        raise ValueError("no rules selected")
    return wanted


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, each exactly once, sorted.

    Sorted traversal keeps reports (and baselines) independent of
    filesystem enumeration order — the linter obeys its own DET002.
    """
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for cand in candidates:
            resolved = cand.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(cand)
    return out


def annotate_parents(tree: ast.AST) -> None:
    """Set ``node.repro_parent`` on every node (None at the root)."""
    tree.repro_parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.repro_parent = node  # type: ignore[attr-defined]


@dataclass
class LintResult:
    """Outcome of a lint run, pre-filtered and counted."""

    findings: List[Finding] = field(default_factory=list)
    n_files: int = 0
    n_waived: int = 0
    n_baselined: int = 0
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.parse_errors + self.findings)


def lint_file(path: Path, rules: Dict[str, object],
              display_path: Optional[str] = None):
    """Lint one file; returns (kept_findings, n_waived, parse_error).

    ``parse_error`` is a Finding (rule ``PARSE``) when the file cannot
    be read or parsed; the file contributes nothing else in that case.
    """
    display = display_path if display_path is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        err = Finding(path=display, line=getattr(exc, "lineno", 1) or 1,
                      col=0, rule_id="PARSE", severity="error",
                      message=f"cannot lint: {exc}")
        return [], 0, err
    annotate_parents(tree)
    ctx = FileContext(path=path, display_path=display,
                      module=module_key(path), source=source, tree=tree)
    for rule in rules.values():
        if not isinstance(rule, FileRule):
            continue
        visitor = rule.visitor(ctx)
        if visitor is not None:
            visitor.visit(tree)
    waivers = collect_waivers(source)
    kept: List[Finding] = []
    n_waived = 0
    for finding in ctx.findings:
        if finding.rule_id in waivers.get(finding.line, ()):
            n_waived += 1
        else:
            kept.append(finding)
    return kept, n_waived, None


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Dict[str, object]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with ``rules``.

    ``root`` (default: current directory) anchors the display paths so
    findings and baselines use stable repo-relative locations.
    """
    if rules is None:
        rules = rule_registry()
    root = Path(root) if root is not None else Path(".")
    files = iter_python_files([Path(p) for p in paths])
    display: Dict[Path, str] = {}
    for f in files:
        try:
            rel = f.resolve().relative_to(root.resolve())
            display[f] = rel.as_posix()
        except ValueError:
            display[f] = f.as_posix()

    result = LintResult(n_files=len(files))
    for f in files:
        kept, n_waived, parse_error = lint_file(f, rules, display[f])
        result.findings.extend(kept)
        result.n_waived += n_waived
        if parse_error is not None:
            result.parse_errors.append(parse_error)
    for rule in rules.values():
        if isinstance(rule, ProjectRule):
            result.findings.extend(rule.check(files, display))
    result.findings.sort()
    return result
