"""Text and JSON reporters for lint results.

Both formats are deterministic: findings arrive pre-sorted by
(path, line, col, rule), and the JSON document is emitted with sorted
keys — the linter's own output satisfies the canonical-artifact
contract it enforces (ATOM001).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

__all__ = ["REPORT_FORMAT", "render_text", "render_json", "summarize"]

REPORT_FORMAT = "repro-lint-report/1"


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return dict(sorted(counts.items()))


def render_text(
    findings: Sequence[Finding],
    n_files: int,
    n_waived: int = 0,
    n_baselined: int = 0,
    stale_baseline: Optional[List[Tuple[str, str, str]]] = None,
) -> str:
    lines = [f.render() for f in findings]
    n_err = sum(1 for f in findings if f.severity == "error")
    n_warn = len(findings) - n_err
    tail = (f"{n_files} file(s) checked: "
            f"{n_err} error(s), {n_warn} warning(s)")
    extras = []
    if n_waived:
        extras.append(f"{n_waived} waived")
    if n_baselined:
        extras.append(f"{n_baselined} baselined")
    if extras:
        tail += f" ({', '.join(extras)})"
    lines.append(tail)
    for key in stale_baseline or []:
        lines.append(
            f"stale baseline entry (no longer found): {key[0]} at "
            f"{key[1]}: {key[2]} — regenerate with --update-baseline")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    n_files: int,
    n_waived: int = 0,
    n_baselined: int = 0,
    stale_baseline: Optional[List[Tuple[str, str, str]]] = None,
) -> str:
    doc = {
        "format": REPORT_FORMAT,
        "files_checked": n_files,
        "summary": {
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(
                1 for f in findings if f.severity == "warning"),
            "waived": n_waived,
            "baselined": n_baselined,
            "by_rule": summarize(findings),
        },
        "findings": [f.to_dict() for f in findings],
        "stale_baseline": [
            {"rule_id": k[0], "path": k[1], "message": k[2]}
            for k in (stale_baseline or [])
        ],
    }
    return json.dumps(doc, sort_keys=True, indent=2)
