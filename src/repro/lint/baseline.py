"""Grandfathered-findings baseline for the determinism linter.

A baseline lets the lint gate turn on *today* while pre-existing
findings are burned down: recorded findings stop failing the gate, any
**new** finding still fails it, and a fixed finding makes the stale
baseline entry visible (reported as unmatched so it can be pruned with
``--update-baseline``).

Matching is a multiset over :meth:`Finding.key` — ``(rule_id, path,
message)``, deliberately excluding line numbers so unrelated edits that
shift a file don't churn the baseline. Two identical findings in one
file need two baseline entries.

The shipped ``lint-baseline.json`` is **empty**: every true positive in
``src/`` was either fixed or waived inline with a justification. The
mechanism stays for downstream forks and for staging future rules.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.util.io import atomic_write_json

__all__ = [
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
]

BASELINE_FORMAT = "repro-lint-baseline/1"

#: Auto-loaded from the working directory when ``--baseline`` is absent.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def load_baseline(path: Path) -> Counter:
    """Load a baseline file into a Counter of finding keys.

    Raises ValueError on an unrecognized format so a corrupted baseline
    fails the gate loudly instead of silently admitting findings.
    """
    import json

    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"{path} is not a {BASELINE_FORMAT} baseline file")
    keys: Counter = Counter()
    for entry in data.get("findings", []):
        keys[(entry["rule_id"], entry["path"], entry["message"])] += 1
    return keys


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, atomic)."""
    entries = [
        {"rule_id": f.rule_id, "path": f.path, "message": f.message}
        for f in sorted(findings)
    ]
    atomic_write_json(path, {"format": BASELINE_FORMAT,
                             "findings": entries}, indent=2)


def apply_baseline(
    findings: List[Finding],
    baseline: Optional[Counter],
) -> Tuple[List[Finding], int, List[Tuple[str, str, str]]]:
    """Split findings against the baseline.

    Returns ``(new_findings, n_baselined, stale_keys)`` where
    ``stale_keys`` are baseline entries no current finding matched —
    evidence the baseline should be regenerated.
    """
    if not baseline:
        return list(findings), 0, []
    remaining = Counter(baseline)
    new: List[Finding] = []
    n_baselined = 0
    for finding in findings:
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            n_baselined += 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items()
                   for _ in range(count))
    return new, n_baselined, stale
