"""Autofixes for the mechanical determinism rules (``lint --fix``).

Only rules whose fix is a pure, semantics-preserving insertion are
automated:

* **DET002 / DET004** — wrap the offending enumeration/set expression
  in ``sorted(...)``,
* **ATOM001** (the ``json.dump``/``dumps`` shape only) — append
  ``sort_keys=True`` to the call.

Structural ATOM001 findings (hand-rolled ``mkstemp``/``os.replace``
sequences, bare ``open(..., "w")``) require judgment about fsync needs
and error paths, so they stay manual.

Fixes are computed from one parse as text insertions, applied back to
front so earlier offsets stay valid, and the rewrite loops to a
fixpoint — running ``--fix`` twice is a no-op, which the test suite
asserts. Waived lines are never rewritten.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import annotate_parents, module_key
from repro.lint.rules import (
    atom001_in_scope,
    build_aliases,
    fs_iteration_target,
    is_set_valued,
    is_sorted_wrapped,
    json_dump_without_sort_keys,
)
from repro.lint.waivers import collect_waivers
from repro.util.io import atomic_write_text

__all__ = ["FIXABLE_RULES", "fix_source", "fix_file"]

FIXABLE_RULES = ("ATOM001", "DET002", "DET004")

_MAX_PASSES = 10


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _abs(offsets: List[int], line: int, col: int) -> int:
    return offsets[line - 1] + col


def _wrap_edits(offsets: List[int],
                node: ast.AST) -> List[Tuple[int, int, str]]:
    """Insertions wrapping ``node``'s source span in ``sorted(...)``.

    Each edit is ``(offset, priority, text)``; priority breaks ties so
    a closing paren lands inside any insertion at the same offset.
    """
    start = _abs(offsets, node.lineno, node.col_offset)
    end = _abs(offsets, node.end_lineno, node.end_col_offset)
    return [(start, 1, "sorted("), (end, 0, ")")]


def _sort_keys_edit(source: str, offsets: List[int],
                    node: ast.Call) -> Tuple[int, int, str]:
    """Insertion adding ``sort_keys=True`` before the closing paren."""
    close = _abs(offsets, node.end_lineno, node.end_col_offset) - 1
    cursor = close - 1
    while cursor >= 0 and source[cursor] in " \t\r\n":
        cursor -= 1
    if cursor >= 0 and source[cursor] == ",":
        return (close, 0, " sort_keys=True")
    return (close, 0, ", sort_keys=True")


def _collect_edits(source: str, module: str,
                   rules: Sequence[str]) -> List[Tuple[int, int, str]]:
    tree = ast.parse(source)
    annotate_parents(tree)
    aliases = build_aliases(tree)
    waivers = collect_waivers(source)
    offsets = _line_offsets(source)
    atom_scope = "ATOM001" in rules and atom001_in_scope(module, source)

    def waived(node: ast.AST, rule_id: str) -> bool:
        return rule_id in waivers.get(node.lineno, ())

    edits: List[Tuple[int, int, str]] = []
    seen_spans: Set[Tuple[int, int]] = set()

    def wrap_once(node: ast.AST) -> None:
        span = (node.lineno, node.col_offset)
        if span not in seen_spans:
            seen_spans.add(span)
            edits.extend(_wrap_edits(offsets, node))

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            if ("DET002" in rules
                    and fs_iteration_target(node, aliases) is not None
                    and not is_sorted_wrapped(node)
                    and not waived(node, "DET002")):
                wrap_once(node)
            if (atom_scope
                    and json_dump_without_sort_keys(node, aliases)
                    and not waived(node, "ATOM001")):
                edits.append(_sort_keys_edit(source, offsets, node))
        iters: List[ast.AST] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, ast.comprehension):
            iters.append(node.iter)
        if "DET004" in rules:
            for it in iters:
                if (is_set_valued(it, aliases)
                        and not is_sorted_wrapped(it)
                        and not waived(it, "DET004")):
                    wrap_once(it)
    return edits


def fix_source(source: str, module: str = "",
               rules: Optional[Sequence[str]] = None) -> Tuple[str, int]:
    """Apply autofixes to ``source``; returns (new_source, n_edits)."""
    selected = tuple(rules) if rules is not None else FIXABLE_RULES
    total = 0
    for _ in range(_MAX_PASSES):
        edits = _collect_edits(source, module, selected)
        if not edits:
            break
        for offset, _prio, text in sorted(edits, reverse=True):
            source = source[:offset] + text + source[offset:]
        total += len(edits)
        ast.parse(source)  # a broken rewrite must fail loudly, pre-write
    return source, total


def fix_file(path: Path,
             rules: Optional[Sequence[str]] = None) -> int:
    """Rewrite ``path`` in place; returns the number of edits applied."""
    source = path.read_text(encoding="utf-8")
    fixed, n_edits = fix_source(source, module_key(path), rules)
    if n_edits and fixed != source:
        atomic_write_text(path, fixed)
    return n_edits
