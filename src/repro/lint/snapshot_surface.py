"""SNAP001 — the snapshot surface must cover live simulation state.

``repro-sim-snapshot/1`` promises that a restored :class:`Simulation`
continues **bit-for-bit**. That promise silently breaks the moment
someone adds ``self.new_counter = 0`` to ``Simulation.__init__`` without
teaching :mod:`repro.sim.snapshot` about it: snapshot/restore still
round-trips, tests that don't touch the new field still pass, and the
divergence surfaces weeks later as a non-reproducible serve restart.

This cross-module rule closes that gap statically. ``sim/snapshot.py``
declares the contract as four frozensets of attribute names::

    SIMULATION_SNAPSHOT_ATTRS   # captured by snapshot_simulation
    SIMULATION_DERIVED_ATTRS    # provably reconstructed on restore
    KERNEL_SNAPSHOT_ATTRS       # (kernel is rebuilt fresh: empty)
    KERNEL_DERIVED_ATTRS

and SNAP001 checks, by AST alone (no imports, works on broken code):

* every ``self.X`` assigned in ``Simulation.__init__`` /
  ``EventKernel.__init__`` appears in exactly one of its class's two
  sets — an undeclared attribute is an **error** at the assignment;
* every declared attribute is actually assigned in ``__init__`` — a
  stale declaration is a **warning** at the declaration site.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import ProjectRule, module_key, register

__all__ = [
    "DECLARATION_NAMES",
    "check_snapshot_surface",
    "SnapshotSurfaceRule",
]

#: (class name, module suffix, declaration-set prefix)
_SURFACES = (
    ("Simulation", "sim/simulation.py", "SIMULATION"),
    ("EventKernel", "sim/kernel.py", "KERNEL"),
)

DECLARATION_NAMES = tuple(
    f"{prefix}_{suffix}"
    for _, _, prefix in _SURFACES
    for suffix in ("SNAPSHOT_ATTRS", "DERIVED_ATTRS")
)


def _parse(path: Path) -> Optional[ast.AST]:
    try:
        return ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None


def _declaration_sets(tree: ast.AST):
    """Extract ``NAME = frozenset({...})`` string sets and their lines."""
    sets: Dict[str, Tuple[set, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name)
                and target.id in DECLARATION_NAMES):
            continue
        value = node.value
        names: set = set()
        ok = (isinstance(value, ast.Call)
              and isinstance(value.func, ast.Name)
              and value.func.id == "frozenset")
        if ok and value.args:
            literal = value.args[0]
            if isinstance(literal, (ast.Set, ast.List, ast.Tuple)):
                for elt in literal.elts:
                    if (isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)):
                        names.add(elt.value)
                    else:
                        ok = False
            else:
                ok = False
        if ok:
            sets[target.id] = (names, node.lineno)
    return sets


def _init_attrs(tree: ast.AST, class_name: str) -> Optional[Dict[str, int]]:
    """``self.X`` names assigned in ``class_name.__init__`` -> first line.

    Returns None when the class or its ``__init__`` is absent.
    """
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == class_name):
            continue
        for item in node.body:
            if not (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "__init__"):
                continue
            attrs: Dict[str, int] = {}
            for sub in ast.walk(item):
                targets: List[ast.AST] = []
                if isinstance(sub, ast.Assign):
                    targets = list(sub.targets)
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    targets = [sub.target]
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        attrs.setdefault(target.attr, target.lineno)
            return attrs
    return None


def check_snapshot_surface(
    simulation_path: Path,
    kernel_path: Path,
    snapshot_path: Path,
    display: Optional[Dict[Path, str]] = None,
) -> List[Finding]:
    """Check the snapshot-surface contract across the three modules.

    Parameterized by path so tests can point it at fixture trios; the
    registered project rule calls it with the real ``repro.sim`` files.
    """
    display = display or {}

    def name_of(path: Path) -> str:
        return display.get(path, str(path))

    findings: List[Finding] = []
    snap_tree = _parse(snapshot_path)
    if snap_tree is None:
        return [Finding(path=name_of(snapshot_path), line=1, col=0,
                        rule_id="SNAP001", severity="error",
                        message="cannot parse snapshot module to read "
                                "the declared snapshot surface")]
    declared = _declaration_sets(snap_tree)
    init_files = {"sim/simulation.py": simulation_path,
                  "sim/kernel.py": kernel_path}

    for class_name, suffix, prefix in _SURFACES:
        snap_name = f"{prefix}_SNAPSHOT_ATTRS"
        derived_name = f"{prefix}_DERIVED_ATTRS"
        missing = [n for n in (snap_name, derived_name) if n not in declared]
        if missing:
            findings.append(Finding(
                path=name_of(snapshot_path), line=1, col=0,
                rule_id="SNAP001", severity="error",
                message=f"snapshot module does not declare "
                        f"{' and '.join(missing)} as frozenset string "
                        f"literals; the {class_name} snapshot surface "
                        "is unchecked"))
            continue
        snap_attrs, snap_line = declared[snap_name]
        derived_attrs, derived_line = declared[derived_name]
        for attr in sorted(snap_attrs & derived_attrs):
            findings.append(Finding(
                path=name_of(snapshot_path), line=snap_line, col=0,
                rule_id="SNAP001", severity="error",
                message=f"attribute {attr!r} declared in both "
                        f"{snap_name} and {derived_name}; pick one"))

        init_path = init_files[suffix]
        tree = _parse(init_path)
        attrs = _init_attrs(tree, class_name) if tree is not None else None
        if attrs is None:
            findings.append(Finding(
                path=name_of(init_path), line=1, col=0,
                rule_id="SNAP001", severity="error",
                message=f"cannot locate {class_name}.__init__ to check "
                        "its snapshot surface"))
            continue
        covered = snap_attrs | derived_attrs
        for attr in sorted(set(attrs) - covered):
            findings.append(Finding(
                path=name_of(init_path), line=attrs[attr], col=0,
                rule_id="SNAP001", severity="error",
                message=f"{class_name}.__init__ sets attribute {attr!r} "
                        f"that is neither serialized ({snap_name}) nor "
                        f"declared derived ({derived_name}) in "
                        "sim/snapshot.py — a restored run would "
                        "silently diverge"))
        for attr in sorted(covered - set(attrs)):
            line = snap_line if attr in snap_attrs else derived_line
            findings.append(Finding(
                path=name_of(snapshot_path), line=line, col=0,
                rule_id="SNAP001", severity="warning",
                message=f"declared snapshot-surface attribute {attr!r} "
                        f"is never assigned in {class_name}.__init__; "
                        "remove the stale declaration"))
    return findings


@register
class SnapshotSurfaceRule(ProjectRule):
    rule_id = "SNAP001"
    description = ("Every attribute set in Simulation.__init__ / "
                   "EventKernel.__init__ must be serialized by "
                   "sim/snapshot.py or declared derived/excluded.")

    def check(self, files: Sequence[Path],
              display: Dict[Path, str]) -> List[Finding]:
        by_module = {module_key(f): f for f in files}
        trio = [by_module.get(f"repro/{suffix}") for suffix in
                ("sim/simulation.py", "sim/kernel.py", "sim/snapshot.py")]
        if any(p is None for p in trio):
            # The lint scope doesn't include the sim trio (e.g. linting
            # a single harness file); nothing to check.
            return []
        return check_snapshot_surface(trio[0], trio[1], trio[2], display)
