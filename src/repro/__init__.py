"""repro — elasticity-compatible heterogeneous DRL resource management
for time-critical computing (ICPP 2020 reproduction).

Subpackages
-----------
``repro.sim``
    Discrete-time heterogeneous cluster simulator (malleable deadline
    jobs, faults, energy, migration).
``repro.workload``
    Arrival processes, job classes, synthetic trace generation.
``repro.dag``
    Dependency-structured (task-graph) workloads and scheduling.
``repro.nn``
    From-scratch NumPy neural-network stack.
``repro.rl``
    RL substrate: env protocol, REINFORCE / A2C / PPO / DQN.
``repro.core``
    The paper's contribution: the DRL scheduler MDP, agent, training.
``repro.baselines``
    Heuristic scheduler roster (FIFO/SJF/EDF/LLF/Tetris/elastic/
    backfill/admission-control/migration).
``repro.harness``
    Experiments E1-E17, sweeps, tables, plots, statistics.
``repro.cli``
    ``python -m repro.cli`` — list/run experiments, train/evaluate.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
