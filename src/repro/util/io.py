"""The one atomic-write helper every durable artifact routes through.

Crash consistency across the repo rests on a single discipline: write to
a ``mkstemp`` temp file *in the destination directory* (same filesystem,
so the rename cannot degrade to a copy), optionally ``fsync``, then
``os.replace`` onto the final name. A reader — another worker sharing
the cache/queue directory, or a process restarting after ``kill -9`` —
only ever observes either the previous complete file or the new complete
file, never a torn write. Concurrent writers race benignly:
last-replace-wins, and every byte sequence they could install is a
complete document.

Before this module, four subsystems (result cache, work queue,
leaderboard policy store, serving checkpointer) each hand-rolled the
pattern. Centralizing it makes the discipline checkable: the
determinism-contract linter (:mod:`repro.lint`, rule ``ATOM001``) flags
``mkstemp``/``os.replace``/bare ``open(..., "w")`` in modules that write
into managed state directories and points here instead.

``atomic_write_json`` defaults to ``sort_keys=True``: canonical JSON
artifacts must not depend on dict construction order, so byte-identity
comparisons (workers 1/2/4, cold/warm cache, served vs batch) stay
meaningful as code is refactored.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = [
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
]


@contextmanager
def atomic_writer(
    path: os.PathLike,
    mode: str = "w",
    encoding: Optional[str] = None,
    fsync: bool = False,
    make_parents: bool = True,
) -> Iterator[Any]:
    """Open a temp file that atomically replaces ``path`` on clean exit.

    ``mode`` must be a write mode (``"w"`` or ``"wb"``). On any
    exception the temp file is removed and ``path`` is left untouched.
    ``fsync=True`` flushes file contents to disk before the rename —
    required for checkpoints that must survive power loss, skipped for
    caches where a lost entry only costs a recompute.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_writer mode must be 'w' or 'wb', got {mode!r}")
    if encoding is None and mode == "w":
        encoding = "utf-8"
    target = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(target))
    if make_parents:
        os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: os.PathLike, data: bytes,
                       fsync: bool = False) -> None:
    """Atomically install ``data`` as the contents of ``path``."""
    with atomic_writer(path, "wb", fsync=fsync) as handle:
        handle.write(data)


def atomic_write_text(path: os.PathLike, text: str, fsync: bool = False,
                      encoding: str = "utf-8") -> None:
    """Atomically install ``text`` as the contents of ``path``."""
    with atomic_writer(path, "w", encoding=encoding, fsync=fsync) as handle:
        handle.write(text)


def atomic_write_json(
    path: os.PathLike,
    payload: Any,
    *,
    sort_keys: bool = True,
    indent: Optional[int] = None,
    default=None,
    fsync: bool = False,
) -> None:
    """Atomically write ``payload`` as JSON (canonical key order).

    ``sort_keys`` defaults to True so the emitted bytes are independent
    of dict construction order — the property every byte-identity
    invariant in the harness and serving layers leans on. Pass
    ``sort_keys=False`` only for files whose byte layout is pinned by an
    existing on-disk format.
    """
    text = json.dumps(payload, sort_keys=sort_keys, indent=indent,
                      default=default)
    atomic_write_text(path, text, fsync=fsync)
