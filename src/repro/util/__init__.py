"""Shared low-level utilities (atomic filesystem writes)."""

from repro.util.io import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "atomic_writer",
]
