"""Trace persistence (JSON, optionally gzip-compressed).

Traces round-trip exactly (modulo runtime state, which is reset on load),
so a generated workload can be pinned to disk and replayed under every
scheduler — the comparison experiments rely on this to give all policies
identical inputs.

Paths ending in ``.gz`` are transparently gzip-compressed. Compressed
writes pin the gzip header (``mtime=0``, no embedded filename), so the
*bytes on disk* — not just the decoded JSON — are a deterministic
function of the jobs, which lets tests and the ingestion pipeline assert
byte-identical re-imports.

The intermediate *payload* form (``trace_payload`` /
``jobs_from_payload``) is the canonical static description of a trace:
plain JSON-compatible dicts carrying only the fields that define a job
(no runtime state, no process-local ``job_id``). The trace-backed
scenarios of :mod:`repro.harness.library` store this form directly so
their cache fingerprints stay stable across processes.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import List, Sequence

from repro.sim.job import Job
from repro.sim.speedup import AmdahlSpeedup, LinearSpeedup, PowerLawSpeedup, SpeedupModel

__all__ = [
    "save_trace",
    "load_trace",
    "trace_payload",
    "jobs_from_payload",
]


def _speedup_to_dict(model: SpeedupModel) -> dict:
    if isinstance(model, AmdahlSpeedup):
        return {"kind": "amdahl", "sigma": model.sigma}
    if isinstance(model, PowerLawSpeedup):
        return {"kind": "powerlaw", "alpha": model.alpha}
    if isinstance(model, LinearSpeedup):
        return {"kind": "linear"}
    raise TypeError(f"unsupported speedup model {type(model).__name__}")


def _speedup_from_dict(d: dict, where: str) -> SpeedupModel:
    if not isinstance(d, dict):
        raise ValueError(f"{where}: field 'speedup' must be an object, "
                         f"got {type(d).__name__}")
    kind = d.get("kind")
    if kind == "amdahl":
        if "sigma" not in d:
            raise ValueError(f"{where}: amdahl speedup missing field 'sigma'")
        return AmdahlSpeedup(float(d["sigma"]))
    if kind == "powerlaw":
        if "alpha" not in d:
            raise ValueError(f"{where}: powerlaw speedup missing field 'alpha'")
        return PowerLawSpeedup(float(d["alpha"]))
    if kind == "linear":
        return LinearSpeedup()
    raise ValueError(f"{where}: unknown speedup kind {kind!r}")


def trace_payload(jobs: Sequence[Job]) -> List[dict]:
    """The canonical static (JSON-compatible) description of a trace.

    Carries exactly the fields that define each job — no runtime state
    and no process-local ``job_id`` — so two logically identical traces
    produce identical payloads regardless of when or where the ``Job``
    objects were constructed.
    """
    return [
        {
            "arrival_time": job.arrival_time,
            "work": job.work,
            "deadline": job.deadline,
            "min_parallelism": job.min_parallelism,
            "max_parallelism": job.max_parallelism,
            "speedup": _speedup_to_dict(job.speedup_model),
            "affinity": job.affinity,
            "job_class": job.job_class,
            "weight": job.weight,
        }
        for job in jobs
    ]


_REQUIRED_FIELDS = ("arrival_time", "work", "deadline", "min_parallelism",
                    "max_parallelism", "speedup", "affinity", "job_class")


def jobs_from_payload(payload) -> List[Job]:
    """Reconstruct fresh :class:`~repro.sim.job.Job` objects from a payload.

    Raises :class:`ValueError` naming the offending record and field on
    malformed input instead of surfacing a bare ``KeyError``.
    """
    if not isinstance(payload, list):
        raise ValueError(
            f"trace payload must be a JSON array of job records, "
            f"got {type(payload).__name__}")
    jobs: List[Job] = []
    for i, item in enumerate(payload):
        where = f"trace record {i}"
        if not isinstance(item, dict):
            raise ValueError(f"{where}: expected an object, "
                             f"got {type(item).__name__}")
        for field in _REQUIRED_FIELDS:
            if field not in item:
                raise ValueError(f"{where}: missing field {field!r}")
        if not isinstance(item["affinity"], dict) or not item["affinity"]:
            raise ValueError(f"{where}: field 'affinity' must be a non-empty "
                             "object mapping platform -> speed factor")
        try:
            job = Job(
                arrival_time=int(item["arrival_time"]),
                work=float(item["work"]),
                deadline=float(item["deadline"]),
                min_parallelism=int(item["min_parallelism"]),
                max_parallelism=int(item["max_parallelism"]),
                speedup_model=_speedup_from_dict(item["speedup"], where),
                affinity={k: float(v) for k, v in item["affinity"].items()},
                job_class=str(item["job_class"]),
                weight=float(item.get("weight", 1.0)),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ValueError) and str(exc).startswith(where):
                raise
            raise ValueError(f"{where}: invalid job record ({exc})") from exc
        jobs.append(job)
    return jobs


def _is_gzip(path: str) -> bool:
    return str(path).endswith(".gz")


def save_trace(jobs: Sequence[Job], path: str) -> None:
    """Write a job trace to JSON (static fields only).

    ``*.gz`` paths are gzip-compressed with a pinned header (``mtime=0``),
    so the written bytes depend only on the jobs.
    """
    payload = trace_payload(jobs)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    text = json.dumps(payload, indent=1)
    if _is_gzip(path):
        with open(path, "wb") as raw:
            with gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                               mtime=0) as gz:
                gz.write(text.encode("utf-8"))
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)


def load_trace(path: str) -> List[Job]:
    """Load a trace saved by :func:`save_trace` (fresh runtime state).

    Accepts both plain ``.json`` and gzip-compressed ``.json.gz`` files;
    malformed content raises a :class:`ValueError` naming the offending
    record and field.
    """
    if _is_gzip(path):
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            raw = fh.read()
    else:
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"trace file {path!r} is not valid JSON: {exc}") from exc
    return jobs_from_payload(payload)
