"""Trace persistence (JSON / JSONL / sharded JSONL, optionally gzipped).

Traces round-trip exactly (modulo runtime state, which is reset on load),
so a generated workload can be pinned to disk and replayed under every
scheduler — the comparison experiments rely on this to give all policies
identical inputs.

Four containers, chosen by path:

* ``*.json`` / ``*.json.gz`` — one JSON array (the original format;
  loading and saving materialize the whole trace);
* ``*.jsonl`` / ``*.jsonl.gz`` — one job payload per line, readable and
  writable as a **stream** (:func:`iter_trace` / :func:`save_trace`
  with any iterable), the container for archive-scale imports;
* a **shard directory** — ``part-00000.jsonl[.gz]`` … plus a
  ``MANIFEST.json`` naming the shards in order
  (:func:`save_trace_shards`), so a multi-million-job trace can be
  moved, diffed, and re-read shard by shard.

All gzip writes pin the gzip header (``mtime=0``, no embedded
filename), so the *bytes on disk* — not just the decoded JSON — are a
deterministic function of the jobs, which lets tests and the ingestion
pipeline assert byte-identical re-imports (streamed and materialized
import paths write identical files).

The intermediate *payload* form (``trace_payload`` /
``jobs_from_payload``) is the canonical static description of a trace:
plain JSON-compatible dicts carrying only the fields that define a job
(no runtime state, no process-local ``job_id``). The trace-backed
scenarios of :mod:`repro.harness.library` store this form directly so
their cache fingerprints stay stable across processes — and across the
container format a trace happens to live in.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from typing import IO, Iterable, Iterator, List, Sequence

from repro.sim.job import Job
from repro.sim.speedup import AmdahlSpeedup, LinearSpeedup, PowerLawSpeedup, SpeedupModel

__all__ = [
    "save_trace",
    "load_trace",
    "iter_trace",
    "iter_trace_window",
    "count_trace_jobs",
    "save_trace_shards",
    "trace_payload",
    "job_payload",
    "jobs_from_payload",
    "looks_like_trace_path",
    "MANIFEST_NAME",
]

#: Index file naming the shards of a chunked trace directory.
MANIFEST_NAME = "MANIFEST.json"
_SHARD_FORMAT = "repro-trace-shards/1"


def _speedup_to_dict(model: SpeedupModel) -> dict:
    if isinstance(model, AmdahlSpeedup):
        return {"kind": "amdahl", "sigma": model.sigma}
    if isinstance(model, PowerLawSpeedup):
        return {"kind": "powerlaw", "alpha": model.alpha}
    if isinstance(model, LinearSpeedup):
        return {"kind": "linear"}
    raise TypeError(f"unsupported speedup model {type(model).__name__}")


def _speedup_from_dict(d: dict, where: str) -> SpeedupModel:
    if not isinstance(d, dict):
        raise ValueError(f"{where}: field 'speedup' must be an object, "
                         f"got {type(d).__name__}")
    kind = d.get("kind")
    if kind == "amdahl":
        if "sigma" not in d:
            raise ValueError(f"{where}: amdahl speedup missing field 'sigma'")
        return AmdahlSpeedup(float(d["sigma"]))
    if kind == "powerlaw":
        if "alpha" not in d:
            raise ValueError(f"{where}: powerlaw speedup missing field 'alpha'")
        return PowerLawSpeedup(float(d["alpha"]))
    if kind == "linear":
        return LinearSpeedup()
    raise ValueError(f"{where}: unknown speedup kind {kind!r}")


def job_payload(job: Job) -> dict:
    """The canonical static (JSON-compatible) description of one job."""
    return {
        "arrival_time": job.arrival_time,
        "work": job.work,
        "deadline": job.deadline,
        "min_parallelism": job.min_parallelism,
        "max_parallelism": job.max_parallelism,
        "speedup": _speedup_to_dict(job.speedup_model),
        "affinity": job.affinity,
        "job_class": job.job_class,
        "weight": job.weight,
    }


def trace_payload(jobs: Iterable[Job]) -> List[dict]:
    """The canonical static (JSON-compatible) description of a trace.

    Carries exactly the fields that define each job — no runtime state
    and no process-local ``job_id`` — so two logically identical traces
    produce identical payloads regardless of when or where the ``Job``
    objects were constructed.
    """
    return [job_payload(job) for job in jobs]


_REQUIRED_FIELDS = ("arrival_time", "work", "deadline", "min_parallelism",
                    "max_parallelism", "speedup", "affinity", "job_class")


def _job_from_item(item, where: str) -> Job:
    """One payload dict -> a fresh :class:`Job` (validated, located)."""
    if not isinstance(item, dict):
        raise ValueError(f"{where}: expected an object, "
                         f"got {type(item).__name__}")
    for field in _REQUIRED_FIELDS:
        if field not in item:
            raise ValueError(f"{where}: missing field {field!r}")
    if not isinstance(item["affinity"], dict) or not item["affinity"]:
        raise ValueError(f"{where}: field 'affinity' must be a non-empty "
                         "object mapping platform -> speed factor")
    try:
        return Job(
            arrival_time=int(item["arrival_time"]),
            work=float(item["work"]),
            deadline=float(item["deadline"]),
            min_parallelism=int(item["min_parallelism"]),
            max_parallelism=int(item["max_parallelism"]),
            speedup_model=_speedup_from_dict(item["speedup"], where),
            affinity={k: float(v) for k, v in item["affinity"].items()},
            job_class=str(item["job_class"]),
            weight=float(item.get("weight", 1.0)),
        )
    except (TypeError, ValueError) as exc:
        if isinstance(exc, ValueError) and str(exc).startswith(where):
            raise
        raise ValueError(f"{where}: invalid job record ({exc})") from exc


def jobs_from_payload(payload) -> List[Job]:
    """Reconstruct fresh :class:`~repro.sim.job.Job` objects from a payload.

    Raises :class:`ValueError` naming the offending record and field on
    malformed input instead of surfacing a bare ``KeyError``.
    """
    if not isinstance(payload, list):
        raise ValueError(
            f"trace payload must be a JSON array of job records, "
            f"got {type(payload).__name__}")
    return [_job_from_item(item, f"trace record {i}")
            for i, item in enumerate(payload)]


def _is_gzip(path: str) -> bool:
    return str(path).endswith(".gz")


def _is_jsonl(path: str) -> bool:
    return str(path).endswith((".jsonl", ".jsonl.gz"))


def _is_shard_dir(path: str) -> bool:
    return os.path.isdir(path) and \
        os.path.isfile(os.path.join(path, MANIFEST_NAME))


def looks_like_trace_path(path: str) -> bool:
    """Whether ``path`` names a trace container this module can read:
    a ``.json[.gz]`` / ``.jsonl[.gz]`` file or a shard directory."""
    return str(path).endswith((".json", ".json.gz", ".jsonl", ".jsonl.gz")) \
        or _is_shard_dir(path)


class _DetGzipTextWriter:
    """Text writer whose gzip header is pinned (mtime=0, no filename):
    written bytes depend only on the content.

    ``GzipFile(fileobj=...)`` does not close the file it wraps, so this
    wrapper closes the whole chain — trailer flushed, fd released —
    deterministically on ``close()``/``__exit__`` instead of relying on
    refcount GC.
    """

    def __init__(self, path: str) -> None:
        self._raw = open(path, "wb")
        try:
            gz = gzip.GzipFile(filename="", mode="wb", fileobj=self._raw,
                               mtime=0)
            self._text = io.TextIOWrapper(gz, encoding="utf-8",
                                          write_through=True)
        except BaseException:
            self._raw.close()
            raise

    def write(self, s: str) -> int:
        return self._text.write(s)

    def close(self) -> None:
        try:
            self._text.close()      # flushes + writes the gzip trailer
        finally:
            self._raw.close()

    def __enter__(self) -> "_DetGzipTextWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _det_gzip_writer(path: str) -> "_DetGzipTextWriter":
    return _DetGzipTextWriter(path)


def _text_writer(path: str) -> IO[str]:
    return _det_gzip_writer(path) if _is_gzip(path) \
        else open(path, "w", encoding="utf-8")


def _text_reader(path: str) -> IO[str]:
    if _is_gzip(path):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, encoding="utf-8")


def save_trace(jobs: Iterable[Job], path: str) -> int:
    """Write a job trace (static fields only); returns the job count.

    ``*.jsonl`` / ``*.jsonl.gz`` paths are written one payload line per
    job, consuming ``jobs`` as a stream — pair with the streaming
    normalizer for archive-scale imports in bounded memory. ``*.json``
    / ``*.json.gz`` paths keep the original one-array layout (the
    payload list is materialized). All ``*.gz`` writes pin the gzip
    header (``mtime=0``), so the written bytes depend only on the jobs.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    if _is_jsonl(path):
        n = 0
        with _text_writer(path) as fh:
            for job in jobs:
                fh.write(json.dumps(job_payload(job)))
                fh.write("\n")
                n += 1
        return n
    payload = trace_payload(jobs)
    text = json.dumps(payload, indent=1)
    with _text_writer(path) as fh:
        fh.write(text)
    return len(payload)


def save_trace_shards(jobs: Iterable[Job], directory: str,
                      jobs_per_shard: int = 100_000,
                      compress: bool = True) -> dict:
    """Write ``jobs`` as sharded JSONL under ``directory``; returns the
    manifest.

    Shards are ``part-00000.jsonl[.gz]``, ``part-00001…`` with at most
    ``jobs_per_shard`` jobs each, plus a ``MANIFEST.json`` naming them
    in order — the chunked container for traces too large to live in
    one file. ``jobs`` is consumed as a stream; bytes are deterministic
    (pinned gzip headers, sorted manifest keys).
    """
    if jobs_per_shard <= 0:
        raise ValueError("jobs_per_shard must be positive")
    os.makedirs(directory, exist_ok=True)
    suffix = ".jsonl.gz" if compress else ".jsonl"
    shards: List[str] = []
    shard_jobs: List[int] = []
    writer: IO[str] = None
    in_shard = 0
    total = 0
    try:
        for job in jobs:
            if writer is None:
                name = f"part-{len(shards):05d}{suffix}"
                writer = _text_writer(os.path.join(directory, name))
                shards.append(name)
                in_shard = 0
            writer.write(json.dumps(job_payload(job)))
            writer.write("\n")
            in_shard += 1
            total += 1
            if in_shard >= jobs_per_shard:
                writer.close()
                writer = None
                shard_jobs.append(in_shard)
    finally:
        if writer is not None:
            writer.close()
            shard_jobs.append(in_shard)
    manifest = {
        "format": _SHARD_FORMAT,
        "shards": shards,
        "shard_jobs": shard_jobs,
        "n_jobs": total,
    }
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return manifest


def _read_manifest(directory: str) -> dict:
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ValueError(f"shard manifest {path!r} is not valid JSON: "
                         f"{exc}") from exc
    if not isinstance(manifest, dict) or \
            manifest.get("format") != _SHARD_FORMAT:
        raise ValueError(
            f"{path!r} is not a trace shard manifest "
            f"(expected format {_SHARD_FORMAT!r})")
    return manifest


def _iter_jsonl(path: str) -> Iterator[Job]:
    with _text_reader(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{os.path.basename(str(path))} line {lineno}"
            try:
                item = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{where}: not valid JSON: {exc}") from exc
            yield _job_from_item(item, where)


def iter_trace(path: str) -> Iterator[Job]:
    """Stream jobs from any trace container (fresh runtime state).

    ``.jsonl[.gz]`` files and shard directories are read line by line
    and shard by shard — memory stays bounded no matter the trace size;
    ``.json[.gz]`` files are loaded whole then yielded. Malformed
    content raises :class:`ValueError` naming the offending location.
    """
    if _is_shard_dir(path):
        manifest = _read_manifest(path)
        for name in manifest.get("shards", ()):
            yield from _iter_jsonl(os.path.join(path, name))
        return
    if _is_jsonl(path):
        yield from _iter_jsonl(path)
        return
    yield from _load_json_array(path)


def iter_trace_window(path: str, start: int, count: int) -> Iterator[Job]:
    """Stream ``jobs[start : start + count]`` from any trace container.

    For shard directories whose manifest carries per-shard job counts
    (``shard_jobs``, written by :func:`save_trace_shards`), shards that
    lie entirely before the window are *skipped without being opened* —
    reading one window of a large archive touches only the shards that
    intersect it. Other containers fall back to streaming from the
    front and discarding the prefix.
    """
    if start < 0 or count < 0:
        raise ValueError("start and count must be non-negative")
    if count == 0:
        return
    end = start + count
    if _is_shard_dir(path):
        manifest = _read_manifest(path)
        shards = manifest.get("shards", ())
        shard_jobs = manifest.get("shard_jobs", ())
        if len(shard_jobs) == len(shards):
            pos = 0
            for name, n in zip(shards, shard_jobs):
                if pos >= end:
                    return
                if pos + n <= start:
                    pos += n        # whole shard before the window: skip
                    continue
                for job in _iter_jsonl(os.path.join(path, name)):
                    if pos >= end:
                        return
                    if pos >= start:
                        yield job
                    pos += 1
            return
    it = iter_trace(path)
    for i, job in enumerate(it):
        if i >= end:
            return
        if i >= start:
            yield job


def count_trace_jobs(path: str) -> int:
    """Number of jobs in a trace container.

    Shard directories answer from the manifest (no shard is opened);
    other containers are streamed and counted.
    """
    if _is_shard_dir(path):
        manifest = _read_manifest(path)
        n = manifest.get("n_jobs")
        if isinstance(n, int):
            return n
    return sum(1 for _ in iter_trace(path))


def _load_json_array(path: str) -> List[Job]:
    with _text_reader(path) as fh:
        raw = fh.read()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"trace file {path!r} is not valid JSON: {exc}") from exc
    return jobs_from_payload(payload)


def load_trace(path: str) -> List[Job]:
    """Load a trace saved by :func:`save_trace` / :func:`save_trace_shards`
    (fresh runtime state).

    Accepts ``.json``, ``.json.gz``, ``.jsonl``, ``.jsonl.gz``, and
    shard directories; malformed content raises a :class:`ValueError`
    naming the offending record and field.
    """
    if _is_shard_dir(path) or _is_jsonl(path):
        return list(iter_trace(path))
    return _load_json_array(path)
