"""Trace persistence (JSON).

Traces round-trip exactly (modulo runtime state, which is reset on load),
so a generated workload can be pinned to disk and replayed under every
scheduler — the comparison experiments rely on this to give all policies
identical inputs.
"""

from __future__ import annotations

import json
import os
from typing import List, Sequence

from repro.sim.job import Job
from repro.sim.speedup import AmdahlSpeedup, LinearSpeedup, PowerLawSpeedup, SpeedupModel

__all__ = ["save_trace", "load_trace"]


def _speedup_to_dict(model: SpeedupModel) -> dict:
    if isinstance(model, AmdahlSpeedup):
        return {"kind": "amdahl", "sigma": model.sigma}
    if isinstance(model, PowerLawSpeedup):
        return {"kind": "powerlaw", "alpha": model.alpha}
    if isinstance(model, LinearSpeedup):
        return {"kind": "linear"}
    raise TypeError(f"unsupported speedup model {type(model).__name__}")


def _speedup_from_dict(d: dict) -> SpeedupModel:
    kind = d.get("kind")
    if kind == "amdahl":
        return AmdahlSpeedup(float(d["sigma"]))
    if kind == "powerlaw":
        return PowerLawSpeedup(float(d["alpha"]))
    if kind == "linear":
        return LinearSpeedup()
    raise ValueError(f"unknown speedup kind {kind!r}")


def save_trace(jobs: Sequence[Job], path: str) -> None:
    """Write a job trace to JSON (static fields only)."""
    payload = [
        {
            "arrival_time": job.arrival_time,
            "work": job.work,
            "deadline": job.deadline,
            "min_parallelism": job.min_parallelism,
            "max_parallelism": job.max_parallelism,
            "speedup": _speedup_to_dict(job.speedup_model),
            "affinity": job.affinity,
            "job_class": job.job_class,
            "weight": job.weight,
        }
        for job in jobs
    ]
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)


def load_trace(path: str) -> List[Job]:
    """Load a trace saved by :func:`save_trace` (fresh runtime state)."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    jobs: List[Job] = []
    for item in payload:
        jobs.append(
            Job(
                arrival_time=int(item["arrival_time"]),
                work=float(item["work"]),
                deadline=float(item["deadline"]),
                min_parallelism=int(item["min_parallelism"]),
                max_parallelism=int(item["max_parallelism"]),
                speedup_model=_speedup_from_dict(item["speedup"]),
                affinity={k: float(v) for k, v in item["affinity"].items()},
                job_class=str(item["job_class"]),
                weight=float(item.get("weight", 1.0)),
            )
        )
    return jobs
