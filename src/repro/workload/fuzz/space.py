"""Bounded knob space the scenario fuzzer searches.

A :class:`ScenarioSpace` is an ordered tuple of :class:`Knob` ranges; a
candidate is a vector of floats, one per knob, rounded to
:data:`VALUE_DECIMALS` decimals so candidate vectors serialize to JSON
byte-identically everywhere (state files, archive entries, fingerprint
feeds never see excess float precision).

Every stochastic operation — initial sampling, mutation, crossover,
parent selection — draws from a *counter-based* Philox stream keyed on
``(seed, op, generation, slot)``, the same idiom the ingest normalizer
uses (:mod:`repro.workload.ingest.normalize`): a draw is a pure function
of its coordinates, never of how many draws happened before it. That is
what makes the search resumable and byte-identical across worker
counts, executor backends, and cache states — no shared RNG cursor
exists to drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["Knob", "ScenarioSpace", "default_space", "VALUE_DECIMALS"]

#: Candidate-vector values are rounded to this many decimals at every
#: operation boundary, so vectors survive a JSON round-trip exactly.
VALUE_DECIMALS = 6

_SEED_MASK = (1 << 64) - 1

# Operation codes keying the counter-based streams (SeedSequence
# entropy must be integers).
OP_SAMPLE = 1
OP_MUTATE = 2
OP_CROSSOVER = 3
OP_SELECT = 4


def _rng(seed: int, op: int, generation: int, slot: int) -> np.random.Generator:
    """The Philox generator for one (op, generation, slot) coordinate."""
    ss = np.random.SeedSequence(
        (int(seed) & _SEED_MASK, int(op), int(generation), int(slot)))
    return np.random.Generator(np.random.Philox(ss))


@dataclass(frozen=True)
class Knob:
    """One bounded dimension of the fuzz search space.

    ``kind`` selects how the raw float value decodes:

    * ``"float"`` — used as-is.
    * ``"int"``   — rounded to the nearest integer.
    * ``"choice"`` — ``lo``/``hi`` must span ``[0, len(choices))``; the
      value floors to an index into ``choices``.
    """

    name: str
    lo: float
    hi: float
    kind: str = "float"
    choices: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("knob name must be non-empty")
        if self.kind not in ("float", "int", "choice"):
            raise ValueError(f"unknown knob kind {self.kind!r}")
        if self.kind == "choice":
            if not self.choices:
                raise ValueError(f"choice knob {self.name!r} needs choices")
            if (self.lo, self.hi) != (0.0, float(len(self.choices))):
                raise ValueError(
                    f"choice knob {self.name!r} must span [0, n_choices)")
        elif self.hi <= self.lo:
            raise ValueError(f"knob {self.name!r} needs lo < hi")

    def decode(self, value: float):
        """The scenario-facing value for a raw vector component."""
        if self.kind == "choice":
            idx = min(int(value), len(self.choices) - 1)
            return self.choices[max(idx, 0)]
        if self.kind == "int":
            return int(round(min(max(value, self.lo), self.hi)))
        return float(value)

    def payload(self) -> dict:
        return {"name": self.name, "lo": self.lo, "hi": self.hi,
                "kind": self.kind, "choices": list(self.choices)}

    @classmethod
    def from_payload(cls, payload: dict) -> "Knob":
        return cls(name=payload["name"], lo=float(payload["lo"]),
                   hi=float(payload["hi"]), kind=payload["kind"],
                   choices=tuple(payload["choices"]))


@dataclass(frozen=True)
class ScenarioSpace:
    """An ordered, bounded knob space; candidates are float vectors.

    All sampling operations are counter-based (see module docstring):
    the caller supplies ``(seed, generation, slot)`` coordinates and the
    result is a pure function of them plus the operands.
    """

    knobs: Tuple[Knob, ...]

    def __post_init__(self) -> None:
        if not self.knobs:
            raise ValueError("ScenarioSpace needs at least one knob")
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate knob names in {names}")

    # --- vector helpers ------------------------------------------------
    def names(self) -> List[str]:
        return [k.name for k in self.knobs]

    def _clip_round(self, values: Sequence[float]) -> Tuple[float, ...]:
        out = []
        for knob, v in zip(self.knobs, values):
            hi = knob.hi
            if knob.kind == "choice":
                # Keep strictly below hi so the floor index stays valid.
                hi = np.nextafter(knob.hi, knob.lo)
            out.append(round(float(min(max(v, knob.lo), hi)), VALUE_DECIMALS))
        return tuple(out)

    def decode(self, vector: Sequence[float]) -> Dict[str, object]:
        """Knob-name -> scenario-facing value for a candidate vector."""
        self._check(vector)
        return {k.name: k.decode(v) for k, v in zip(self.knobs, vector)}

    def _check(self, vector: Sequence[float]) -> None:
        if len(vector) != len(self.knobs):
            raise ValueError(
                f"vector has {len(vector)} components, space has "
                f"{len(self.knobs)} knobs")

    # --- counter-based operations --------------------------------------
    def sample(self, seed: int, generation: int, slot: int) -> Tuple[float, ...]:
        """A fresh uniform candidate for one population slot."""
        u = _rng(seed, OP_SAMPLE, generation, slot).random(len(self.knobs))
        vals = [k.lo + ui * (k.hi - k.lo) for k, ui in zip(self.knobs, u)]
        return self._clip_round(vals)

    def mutate(self, vector: Sequence[float], seed: int, generation: int,
               slot: int, scale: float = 0.25) -> Tuple[float, ...]:
        """Gaussian perturbation of every knob, scaled by its range."""
        self._check(vector)
        noise = _rng(seed, OP_MUTATE, generation, slot).normal(
            size=len(self.knobs))
        vals = [v + n * scale * (k.hi - k.lo)
                for k, v, n in zip(self.knobs, vector, noise)]
        return self._clip_round(vals)

    def crossover(self, a: Sequence[float], b: Sequence[float], seed: int,
                  generation: int, slot: int) -> Tuple[float, ...]:
        """Uniform per-knob crossover of two parents."""
        self._check(a)
        self._check(b)
        u = _rng(seed, OP_CROSSOVER, generation, slot).random(len(self.knobs))
        vals = [av if ui < 0.5 else bv for av, bv, ui in zip(a, b, u)]
        return self._clip_round(vals)

    def select(self, n_ranked: int, seed: int, generation: int,
               slot: int) -> Tuple[int, int, bool]:
        """Rank-biased parent picks for one child slot.

        Returns ``(parent_a, parent_b, do_crossover_draw)`` where the
        parent indices index a best-first ranking (the min-of-two-uniforms
        trick biases toward the top) and the third component is the
        uniform draw deciding crossover, returned raw so the caller can
        compare it against its own crossover probability.
        """
        u = _rng(seed, OP_SELECT, generation, slot).random(5)
        a = int(min(u[0], u[1]) * n_ranked)
        b = int(min(u[2], u[3]) * n_ranked)
        return min(a, n_ranked - 1), min(b, n_ranked - 1), float(u[4])

    # --- serialization -------------------------------------------------
    def payload(self) -> dict:
        return {"knobs": [k.payload() for k in self.knobs]}

    @classmethod
    def from_payload(cls, payload: dict) -> "ScenarioSpace":
        return cls(knobs=tuple(Knob.from_payload(p)
                               for p in payload["knobs"]))


def default_space() -> ScenarioSpace:
    """The stock fuzz space over the synthetic generator's dials.

    Spans the regimes the paper's experiments sweep one at a time —
    offered load, arrival burstiness, deadline tightness, class mix,
    elasticity width — plus the fault and energy knobs, so the fuzzer
    can find *combinations* no hand-written sweep visits.
    """
    return ScenarioSpace(knobs=(
        Knob("load", 0.5, 1.25),
        Knob("arrival", 0.0, 3.0, kind="choice",
             choices=("poisson", "bursty", "diurnal")),
        Knob("burstiness", 0.1, 0.9),
        Knob("switch_prob", 0.02, 0.3),
        Knob("tightness", 0.55, 1.6),
        Knob("tc_share", 0.2, 0.85),
        Knob("width_scale", 0.5, 2.0),
        Knob("fault_rate", 0.0, 0.012),
        Knob("energy_idle", 0.05, 0.8),
    ))
