"""The failure archive: surviving stress scenarios, with provenance.

Fuzz candidates that beat the policy worst survive into
``<dir>/archive.json`` (default :data:`DEFAULT_FUZZ_DIR`, overridable
via :data:`FUZZ_DIR_ENV`), one entry per scenario under the stable
derived name ``fuzz/<fingerprint12>`` — the first 12 hex digits of the
candidate scenario's structural fingerprint, so the name survives
re-runs, machines, and archive merges. Each entry records full
provenance in the cases-JSON discipline: the raw knob vector and its
decoded values, the knob-space definition, the build parameters, the
trace seeds, the policy label + fingerprint it stressed, and the
measured transfer gap.

Archived names resolve through the ordinary scenario registry path:
``get_scenario("fuzz/<name>")`` (and therefore ``--scenario
fuzz/<name>`` everywhere in the CLI) rebuilds the scenario from its
archived knobs and verifies the fingerprint still matches — a changed
generator would silently redefine every archived stress test, so drift
is a hard error, not a shrug.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Dict, List, Optional

from repro.util.io import atomic_write_json
from repro.workload.fuzz.scenario import FuzzScenario, scenario_from_knobs
from repro.workload.fuzz.space import ScenarioSpace

__all__ = [
    "FUZZ_DIR_ENV",
    "DEFAULT_FUZZ_DIR",
    "ARCHIVE_FORMAT",
    "FUZZ_PREFIX",
    "fuzz_dir",
    "archive_path",
    "scenario_name",
    "load_archive",
    "save_archive",
    "archived_names",
    "load_archived_scenario",
]

#: Environment variable pointing ``fuzz/<name>`` resolution at a
#: specific archive directory (the ``--out-dir`` of a fuzz run).
FUZZ_DIR_ENV = "REPRO_FUZZ_DIR"

#: Default archive directory, next to the result cache / policy store.
DEFAULT_FUZZ_DIR = ".repro-fuzz"

ARCHIVE_FORMAT = "repro-fuzz-archive/1"
_ARCHIVE_FILENAME = "archive.json"

#: Namespace prefix separating archived fuzz scenarios from registry
#: names and trace paths in ``get_scenario``.
FUZZ_PREFIX = "fuzz/"


def fuzz_dir(root: Optional[str] = None) -> str:
    """Resolve the archive directory: argument > env var > default."""
    if root:
        return os.fspath(root)
    env = os.environ.get(FUZZ_DIR_ENV, "").strip()
    return env or DEFAULT_FUZZ_DIR


def archive_path(root: Optional[str] = None) -> str:
    return os.path.join(fuzz_dir(root), _ARCHIVE_FILENAME)


def scenario_name(scenario: FuzzScenario) -> str:
    """The stable archive name for a candidate: ``fuzz/<fingerprint12>``."""
    return FUZZ_PREFIX + scenario.fingerprint()[:12]


def load_archive(root: Optional[str] = None) -> Dict[str, dict]:
    """Archive entries by name; ``{}`` when no archive file exists."""
    path = archive_path(root)
    if not os.path.isfile(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    fmt = payload.get("format")
    if fmt != ARCHIVE_FORMAT:
        raise ValueError(
            f"fuzz archive {path!r} has format {fmt!r}, expected "
            f"{ARCHIVE_FORMAT!r}")
    return {entry["name"]: entry for entry in payload["entries"]}


def save_archive(entries: Dict[str, dict],
                 root: Optional[str] = None) -> str:
    """Atomically install the archive file (entries sorted by name)."""
    path = archive_path(root)
    payload = {
        "format": ARCHIVE_FORMAT,
        "entries": [entries[name] for name in sorted(entries)],
    }
    atomic_write_json(path, payload, indent=2)
    return path


def archived_names(root: Optional[str] = None) -> List[str]:
    """Sorted archived scenario names (``fuzz/...``), possibly empty.

    Unreadable/absent archives yield ``[]``: this feeds error messages
    and listings, which must not themselves raise.
    """
    try:
        return sorted(load_archive(root))
    except (ValueError, OSError, KeyError, json.JSONDecodeError):
        return []


def _rebuild(entry: dict) -> FuzzScenario:
    space = ScenarioSpace.from_payload(entry["space"])
    knobs = space.decode(entry["vector"])
    return scenario_from_knobs(knobs, **entry["build"])


def load_archived_scenario(name: str, root: Optional[str] = None,
                           **overrides) -> FuzzScenario:
    """Rebuild an archived stress scenario from its provenance entry.

    The rebuilt scenario's fingerprint must still match the archived
    name: a mismatch means the generator or knob mapping changed since
    the archive was written, so the entry no longer denotes the
    workload it was archived for — re-run the fuzzer rather than
    silently evaluating something else. ``overrides`` replace scenario
    fields after the integrity check (e.g. ``engine=...``; both engines
    evaluate bit-identically).
    """
    entries = load_archive(root)
    if name not in entries:
        raise KeyError(
            f"unknown fuzz scenario {name!r}: archive "
            f"{archive_path(root)!r} has {sorted(entries) or '[no entries]'}; "
            f"set {FUZZ_DIR_ENV} (or pass --fuzz-dir) to the fuzz run's "
            "--out-dir, or run `repro.cli fuzz run` first")
    scenario = _rebuild(entries[name])
    rebuilt = scenario_name(scenario)
    if rebuilt != name:
        raise ValueError(
            f"fuzz archive entry {name!r} rebuilds to fingerprint "
            f"{rebuilt!r}: the scenario generator changed since this "
            "archive was written; re-run the fuzzer to refresh it")
    if overrides:
        scenario = replace(scenario, **overrides)
    return scenario
