"""Adversarial scenario fuzzing: search the generator for policy failures.

The fuzzer widens the scenario space along the axis the registry cannot:
instead of hand-naming settings, it *searches* the synthetic generator's
knob space (load, arrival shape, deadline tightness, class mix,
elasticity width, fault/energy dials) for the candidates where a trained
policy's transfer gap against the best heuristic baseline blows up, and
archives the survivors as named stress scenarios (``fuzz/<fingerprint>``)
usable anywhere ``--scenario`` is accepted.

Layout:

* :mod:`~repro.workload.fuzz.space` — bounded knob ranges + counter-based
  Philox sampling/mutation/crossover.
* :mod:`~repro.workload.fuzz.scenario` — knob vector -> runnable
  :class:`FuzzScenario` (arrival/fault/energy knobs included).
* :mod:`~repro.workload.fuzz.search` — the generation loop, scored
  through ``run_cells`` (parallel + cached), checkpointed for resume.
* :mod:`~repro.workload.fuzz.archive` — the provenance-complete failure
  archive and the ``fuzz/<name>`` resolution hook.
"""

from repro.workload.fuzz.archive import (
    DEFAULT_FUZZ_DIR,
    FUZZ_DIR_ENV,
    FUZZ_PREFIX,
    archived_names,
    load_archive,
    load_archived_scenario,
    save_archive,
    scenario_name,
)
from repro.workload.fuzz.scenario import FuzzScenario, scenario_from_knobs
from repro.workload.fuzz.search import FuzzConfig, FuzzResult, run_fuzz
from repro.workload.fuzz.space import Knob, ScenarioSpace, default_space

__all__ = [
    "DEFAULT_FUZZ_DIR",
    "FUZZ_DIR_ENV",
    "FUZZ_PREFIX",
    "Knob",
    "ScenarioSpace",
    "FuzzScenario",
    "FuzzConfig",
    "FuzzResult",
    "archived_names",
    "default_space",
    "load_archive",
    "load_archived_scenario",
    "run_fuzz",
    "save_archive",
    "scenario_from_knobs",
    "scenario_name",
]
