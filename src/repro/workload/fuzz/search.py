"""The adversarial search loop: population, objective, selection.

A small evolutionary search over a :class:`ScenarioSpace`: every
generation, each candidate knob vector is built into a
:class:`~repro.workload.fuzz.scenario.FuzzScenario` and scored by the
**transfer gap** — the trained policy's mean primary metric minus the
best (lowest) mean among the heuristic baselines, over the same paired
trace seeds. Positive gap = the policy loses to a heuristic there; the
fuzzer climbs toward the candidates where it loses worst.

All evaluation fans out through one
:func:`~repro.harness.parallel.run_cells` call per generation —
(candidate x scheduler x trace-seed) cells — so the search parallelizes
across workers and hosts, hits the persistent
:class:`~repro.harness.cache.ResultCache`, and inherits the harness's
byte-identity guarantees: scores depend only on per-cell reports, which
are independent of backend, worker count, and the cache hit/miss split.
Selection draws every random number from the counter-based streams in
:mod:`~repro.workload.fuzz.space`, keyed on (seed, generation, slot),
so the whole trajectory — and therefore the final archive bytes — is a
pure function of the config.

State is checkpointed to ``<out-dir>/state.json`` after every
generation (atomic, canonical JSON); ``repro.cli fuzz resume`` re-enters
the loop at the first unfinished generation, re-evaluating at most one
generation of cells (usually straight from cache).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.parallel import BaselineFactory, EvalCell, run_cells
from repro.util.io import atomic_write_json
from repro.workload.fuzz.archive import (
    load_archive,
    save_archive,
    scenario_name,
)
from repro.workload.fuzz.scenario import FuzzScenario, scenario_from_knobs
from repro.workload.fuzz.space import ScenarioSpace, default_space

__all__ = ["FuzzConfig", "FuzzResult", "run_fuzz", "load_state",
           "STATE_FORMAT"]

STATE_FORMAT = "repro-fuzz-state/1"
_STATE_FILENAME = "state.json"


@dataclass(frozen=True)
class FuzzConfig:
    """Search budget, objective, and candidate build parameters.

    Frozen and structural: the config (with the space and the policy
    fingerprint) fully determines the search trajectory, so it is
    stored in ``state.json`` and checked on resume.
    """

    population: int = 8
    generations: int = 3
    elites: int = 2
    mutation_scale: float = 0.25
    crossover_prob: float = 0.5
    n_traces: int = 2
    base_seed: int = 1000
    seed: int = 0
    metric: str = "miss_rate"
    baselines: Tuple[str, ...] = ("edf", "greedy-elastic", "tetris")
    max_archive: int = 8
    min_gap: Optional[float] = None
    horizon: int = 60
    max_ticks: int = 400
    cpu_capacity: int = 24
    gpu_capacity: int = 8
    engine: str = "tick"

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0 <= self.elites < self.population:
            raise ValueError("elites must be in [0, population)")
        if self.n_traces < 1:
            raise ValueError("n_traces must be >= 1")
        if self.max_archive < 1:
            raise ValueError("max_archive must be >= 1")
        if not self.baselines:
            raise ValueError("need at least one baseline to gap against")

    def build_params(self) -> dict:
        """Keyword arguments for :func:`scenario_from_knobs`."""
        return {"horizon": self.horizon, "max_ticks": self.max_ticks,
                "cpu_capacity": self.cpu_capacity,
                "gpu_capacity": self.gpu_capacity, "engine": self.engine}


@dataclass
class FuzzResult:
    """What a fuzz run produced: archive entries + bookkeeping."""

    archive: List[dict]
    archive_file: str
    state_file: str
    evaluated: int
    generations: int


def _state_path(out_dir: str) -> str:
    return os.path.join(out_dir, _STATE_FILENAME)


def load_state(out_dir: str) -> dict:
    """Read and validate a fuzz run's checkpoint file."""
    path = _state_path(out_dir)
    if not os.path.isfile(path):
        raise FileNotFoundError(
            f"no fuzz state at {path!r}; start one with `repro.cli fuzz run`")
    with open(path, encoding="utf-8") as fh:
        state = json.load(fh)
    fmt = state.get("format")
    if fmt != STATE_FORMAT:
        raise ValueError(f"fuzz state {path!r} has format {fmt!r}, "
                         f"expected {STATE_FORMAT!r}")
    return state


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _evaluate_generation(
    vectors: Sequence[Tuple[float, ...]],
    space: ScenarioSpace,
    config: FuzzConfig,
    policy_factory: Callable,
    policy_label: str,
    results: Dict[str, dict],
    generation: int,
    workers: int,
    cache=None,
    backend=None,
) -> List[str]:
    """Score every not-yet-scored vector; returns this generation's names.

    One ``run_cells`` call covers all (new candidate, scheduler, trace
    seed) cells, so within-generation work saturates the backend.
    """
    scenarios: Dict[str, FuzzScenario] = {}
    names: List[str] = []
    fresh: List[str] = []
    for vector in vectors:
        scenario = scenario_from_knobs(space.decode(vector),
                                       **config.build_params())
        name = scenario_name(scenario)
        names.append(name)
        if name in results or name in scenarios:
            continue
        scenarios[name] = scenario
        results[name] = {"name": name, "vector": list(vector),
                         "knobs": space.decode(vector),
                         "generation": generation}
    schedulers = [(f"policy:{policy_label}", policy_factory)]
    schedulers += [(b, BaselineFactory(b)) for b in config.baselines]
    cells = []
    for name in sorted(scenarios):
        fresh.append(name)
        for sched_name, factory in schedulers:
            for t in range(config.n_traces):
                cells.append(EvalCell(
                    scenario_name=name, scenario=scenarios[name],
                    scheduler_name=sched_name, factory=factory,
                    trace_index=t, trace_seed=config.base_seed + t,
                    max_ticks=scenarios[name].max_ticks))
    reports = run_cells(cells, workers=workers, cache=cache, backend=backend)
    per_sched = len(schedulers) * config.n_traces
    for i, name in enumerate(fresh):
        block = reports[i * per_sched:(i + 1) * per_sched]
        means = {}
        for j, (sched_name, _) in enumerate(schedulers):
            window = block[j * config.n_traces:(j + 1) * config.n_traces]
            means[sched_name] = _mean(
                [getattr(rep, config.metric) for rep in window])
        policy_mean = means[schedulers[0][0]]
        best_baseline = min(config.baselines,
                            key=lambda b: (means[b], b))
        results[name].update({
            "policy_metric": policy_mean,
            "baseline_metric": means[best_baseline],
            "best_baseline": best_baseline,
            "baseline_metrics": {b: means[b] for b in config.baselines},
            "gap": policy_mean - means[best_baseline],
        })
    return names


def _rank(names: Sequence[str], results: Dict[str, dict]) -> List[str]:
    """Names best-first: largest gap, name as the deterministic tie-break."""
    return sorted(dict.fromkeys(names),
                  key=lambda n: (-results[n]["gap"], n))


def _next_population(
    ranked: Sequence[str],
    results: Dict[str, dict],
    space: ScenarioSpace,
    config: FuzzConfig,
    generation: int,
) -> List[Tuple[float, ...]]:
    """Elites carried over + rank-selected, crossed, mutated children."""
    vectors = [tuple(results[n]["vector"]) for n in ranked]
    population: List[Tuple[float, ...]] = vectors[:config.elites]
    for slot in range(config.population - config.elites):
        a, b, u_cross = space.select(len(vectors), config.seed,
                                     generation, slot)
        child = vectors[a]
        if u_cross < config.crossover_prob:
            child = space.crossover(vectors[a], vectors[b], config.seed,
                                    generation, slot)
        population.append(space.mutate(child, config.seed, generation, slot,
                                       scale=config.mutation_scale))
    return population


def _write_state(out_dir: str, config: FuzzConfig, space: ScenarioSpace,
                 policy: dict, generation: int,
                 population: Sequence[Tuple[float, ...]],
                 results: Dict[str, dict], history: List[dict]) -> str:
    path = _state_path(out_dir)
    atomic_write_json(path, {
        "format": STATE_FORMAT,
        "config": dataclasses.asdict(config),
        "space": space.payload(),
        "policy": policy,
        "generation": generation,
        "population": [list(v) for v in population],
        "results": {name: results[name] for name in sorted(results)},
        "history": history,
    }, indent=2)
    return path


def _archive_entries(results: Dict[str, dict], space: ScenarioSpace,
                     config: FuzzConfig, policy: dict) -> Dict[str, dict]:
    """The surviving stress scenarios, full provenance attached."""
    ranked = _rank(list(results), results)
    if config.min_gap is not None:
        ranked = [n for n in ranked if results[n]["gap"] > config.min_gap]
    entries: Dict[str, dict] = {}
    for name in ranked[:config.max_archive]:
        res = results[name]
        entries[name] = {
            "name": name,
            "vector": res["vector"],
            "knobs": res["knobs"],
            "space": space.payload(),
            "build": config.build_params(),
            "gap": res["gap"],
            "metric": config.metric,
            "policy_metric": res["policy_metric"],
            "baseline_metric": res["baseline_metric"],
            "best_baseline": res["best_baseline"],
            "baseline_metrics": res["baseline_metrics"],
            "policy": policy,
            "seeds": [config.base_seed + t for t in range(config.n_traces)],
            "search_seed": config.seed,
            "generation": res["generation"],
        }
    return entries


def run_fuzz(
    policy_factory: Callable,
    policy_label: str,
    policy_fingerprint: str,
    out_dir: str,
    space: Optional[ScenarioSpace] = None,
    config: Optional[FuzzConfig] = None,
    workers: int = 1,
    cache=None,
    backend=None,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzResult:
    """Run (or resume) the adversarial search and install the archive.

    ``policy_factory`` must be picklable for ``workers > 1`` /
    non-serial backends (e.g.
    :class:`~repro.harness.leaderboard.StoredPolicyFactory`);
    ``policy_fingerprint`` is recorded as provenance and pinned on
    resume. The archive under ``out_dir`` is *merged*: entries from
    earlier runs with different configs survive, same-name entries are
    refreshed. Returns the entries this run archived.
    """
    say = progress if progress is not None else (lambda _msg: None)
    policy = {"label": policy_label, "fingerprint": policy_fingerprint}
    if resume:
        state = load_state(out_dir)
        config = FuzzConfig(**{**state["config"],
                               "baselines": tuple(state["config"]["baselines"]),
                               "min_gap": state["config"]["min_gap"]})
        space = ScenarioSpace.from_payload(state["space"])
        if state["policy"]["fingerprint"] != policy_fingerprint:
            raise ValueError(
                "fuzz resume with a different policy: state has "
                f"{state['policy']['fingerprint'][:12]}..., got "
                f"{policy_fingerprint[:12]}...; start a fresh run "
                "(new --out-dir) instead")
        generation = int(state["generation"])
        population = [tuple(v) for v in state["population"]]
        results = {n: dict(r) for n, r in state["results"].items()}
        history = list(state["history"])
    else:
        config = config if config is not None else FuzzConfig()
        space = space if space is not None else default_space()
        generation = 0
        population = [space.sample(config.seed, 0, slot)
                      for slot in range(config.population)]
        results = {}
        history = []

    while generation < config.generations:
        names = _evaluate_generation(
            population, space, config, policy_factory, policy_label,
            results, generation, workers, cache=cache, backend=backend)
        ranked = _rank(names, results)
        history.append({
            "generation": generation,
            "best": ranked[0],
            "best_gap": results[ranked[0]]["gap"],
            "names": ranked,
        })
        say(f"generation {generation}: best gap "
            f"{results[ranked[0]]['gap']:+.4f} ({ranked[0]})")
        population = _next_population(ranked, results, space, config,
                                      generation)
        generation += 1
        _write_state(out_dir, config, space, policy, generation,
                     population, results, history)

    entries = _archive_entries(results, space, config, policy)
    merged = dict(load_archive(out_dir))
    merged.update(entries)
    archive_file = save_archive(merged, root=out_dir)
    state_file = _write_state(out_dir, config, space, policy, generation,
                              population, results, history)
    return FuzzResult(
        archive=[entries[name] for name in sorted(entries)],
        archive_file=archive_file,
        state_file=state_file,
        evaluated=len(results),
        generations=generation,
    )
