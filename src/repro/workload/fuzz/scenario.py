"""Knob-vector -> runnable scenario: the fuzzer's phenotype mapping.

:class:`FuzzScenario` is an ordinary
:class:`~repro.harness.scenario.Scenario` subclass whose extra fields
are the decoded fuzz knobs that cannot be folded into the base fields:
the arrival-process family and its shape parameters, and the fault /
energy dials. It is fully structural (dataclass fields only), so the
persistent result cache, the pickling process pool, and the scenario
fingerprint all work unchanged — a candidate's archive name
``fuzz/<fingerprint12>`` is a digest of exactly the fields that
determine its evaluation results.

Evaluation goes through :meth:`FuzzScenario.evaluate_segment`, the same
hook :class:`~repro.harness.library.TraceWindowScenario` uses, so
``run_cells`` picks up the fault injector and energy meter without any
change to the executor layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.harness.scenario import Scenario
from repro.sim.job import Job
from repro.sim.platform import Platform
from repro.workload.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.workload.classes import default_job_classes
from repro.workload.generator import (
    WorkloadConfig,
    arrival_rate_for_load,
    generate_trace,
)

__all__ = ["FuzzScenario", "scenario_from_knobs"]

#: Offset mixed into ``trace_seed`` for the fault stream, so faults are
#: paired across schedulers per trace (same convention as
#: :func:`repro.core.training.evaluate_scheduler`'s default) without
#: colliding with the trace RNG seed itself.
_FAULT_SEED_BASE = 90001

#: Time-critical classes of the default mix (reweighted by ``tc_share``).
_TC_CLASSES = ("tc-cpu", "tc-gpu")

#: Mean time to repair for injected faults, in ticks. Fixed: the fuzz
#: knob dials failure *frequency*; repair time is not searched.
_FAULT_MTTR = 10.0


@dataclass
class FuzzScenario(Scenario):
    """A fuzz candidate: synthetic scenario + arrival/fault/energy knobs.

    The base ``workload`` and ``load`` fields carry the class-mix,
    width, and tightness knobs (already applied by
    :func:`scenario_from_knobs`); the fields below carry the knobs that
    act at trace-sampling or evaluation time.
    """

    arrival: str = "poisson"
    burstiness: float = 0.5
    switch_prob: float = 0.1
    fault_rate: float = 0.0
    energy_idle: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.arrival not in ("poisson", "bursty", "diurnal"):
            raise ValueError(f"unknown arrival family {self.arrival!r}")
        if not 0.0 <= self.burstiness < 1.0:
            raise ValueError("burstiness must be in [0, 1)")
        if self.fault_rate < 0.0:
            raise ValueError("fault_rate must be non-negative")

    def arrival_process(self) -> ArrivalProcess:
        """The knob-selected arrival process, anchored to ``load``.

        The mean rate always equals the Poisson rate that realizes the
        ``load`` knob, so the arrival-family knob changes *shape*
        (burst structure, diurnal cycle) at a held offered load rather
        than smuggling in a second load dial.
        """
        rate = arrival_rate_for_load(self.load, self.workload, self.platforms)
        if self.arrival == "bursty":
            return BurstyArrivals(rate_low=rate * (1.0 - self.burstiness),
                                  rate_high=rate * (1.0 + self.burstiness),
                                  switch_prob=self.switch_prob)
        if self.arrival == "diurnal":
            return DiurnalArrivals(base_rate=rate, amplitude=self.burstiness,
                                   period=max(8, self.workload.horizon // 2))
        return PoissonArrivals(rate)

    def trace(self, seed: int) -> List[Job]:
        rng = np.random.default_rng(seed)
        return generate_trace(self.workload, self.platforms, rng,
                              arrivals=self.arrival_process())

    def evaluate_segment(self, policy, trace_seed: int):
        """One trace's :class:`~repro.sim.metrics.MetricsReport`.

        The ``run_cells`` segment hook: evaluates with the fault
        injector (when ``fault_rate > 0``) and energy meter attached,
        fault seed paired by trace seed so every scheduler faces the
        same failures on the same trace.
        """
        from repro.core.training import evaluate_scheduler
        from repro.sim.energy import PowerModel
        from repro.sim.faults import FaultModel

        fault_models = None
        if self.fault_rate > 0.0:
            fault_models = {p.name: FaultModel(mtbf=1.0 / self.fault_rate,
                                               mttr=_FAULT_MTTR)
                            for p in self.platforms}
        power_models = {p.name: PowerModel(idle_power=self.energy_idle,
                                           busy_power=1.0)
                        for p in self.platforms}
        return evaluate_scheduler(
            policy, self.platforms, [self.trace(trace_seed)],
            max_ticks=self.max_ticks, fault_models=fault_models,
            power_models=power_models,
            fault_seed=_FAULT_SEED_BASE + trace_seed,
            engine=self.engine)[0]


def _mix_classes(tc_share: float, width_scale: float):
    """The default 4-class mix, reweighted and width-scaled by knobs."""
    base = default_job_classes()
    tc_total = sum(c.mix_weight for c in base if c.name in _TC_CLASSES)
    be_total = sum(c.mix_weight for c in base if c.name not in _TC_CLASSES)
    out = []
    for cls in base:
        share, total = ((tc_share, tc_total) if cls.name in _TC_CLASSES
                        else (1.0 - tc_share, be_total))
        lo, hi = cls.parallelism_range
        new_hi = max(lo, int(round(hi * width_scale)))
        out.append(replace(cls,
                           mix_weight=round(share * cls.mix_weight / total, 6),
                           parallelism_range=(lo, new_hi)))
    return out


def scenario_from_knobs(
    knobs: Mapping[str, object],
    horizon: int = 60,
    max_ticks: int = 400,
    cpu_capacity: int = 24,
    gpu_capacity: int = 8,
    engine: str = "tick",
    core: Optional[object] = None,
) -> FuzzScenario:
    """Build the :class:`FuzzScenario` a decoded knob dict describes.

    ``knobs`` is :meth:`ScenarioSpace.decode` output (the keys of
    :func:`~repro.workload.fuzz.space.default_space`). The mapping is
    pure: the same knob dict and build parameters always produce a
    scenario with the same fingerprint, which is what makes archive
    names stable.
    """
    from repro.core.config import CoreConfig

    k: Dict[str, object] = dict(knobs)
    platforms = [Platform("cpu", cpu_capacity, 1.0),
                 Platform("gpu", gpu_capacity, 1.0)]
    workload = WorkloadConfig(
        classes=_mix_classes(float(k["tc_share"]), float(k["width_scale"])),
        horizon=horizon,
        tightness_scale=float(k["tightness"]),
    )
    return FuzzScenario(
        platforms=platforms,
        workload=workload,
        load=float(k["load"]),
        core=core if core is not None else CoreConfig(),
        max_ticks=max_ticks,
        engine=engine,
        arrival=str(k["arrival"]),
        burstiness=float(k["burstiness"]),
        switch_prob=float(k["switch_prob"]),
        fault_rate=float(k["fault_rate"]),
        energy_idle=float(k["energy_idle"]),
    )
