"""Arrival processes generating integer job arrival ticks.

All processes emit a sorted list of integer arrival times over a finite
horizon given an explicit RNG, so traces are reproducible from seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "DeterministicArrivals",
]


class ArrivalProcess:
    """Protocol: sample arrival ticks in ``[0, horizon)``."""

    def sample(self, horizon: int, rng: np.random.Generator) -> List[int]:
        raise NotImplementedError

    @staticmethod
    def _check_horizon(horizon: int) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process with ``rate`` expected arrivals per tick.

    Sampled per tick as Binomial-free Poisson counts (exact for a
    discrete-time model) and expanded to one arrival time per job.
    """

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def sample(self, horizon: int, rng: np.random.Generator) -> List[int]:
        self._check_horizon(horizon)
        counts = rng.poisson(self.rate, size=horizon)
        return list(np.repeat(np.arange(horizon), counts))


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (MMPP-2).

    Alternates between a ``calm`` state with rate ``rate_low`` and a
    ``burst`` state with rate ``rate_high``; each tick the chain switches
    state with probability ``switch_prob``. Models the diurnal/bursty
    submission patterns of time-critical workloads (e.g. sensor-triggered
    analysis campaigns) that a plain Poisson process lacks.
    """

    rate_low: float
    rate_high: float
    switch_prob: float = 0.05

    def __post_init__(self) -> None:
        if self.rate_low <= 0 or self.rate_high <= 0:
            raise ValueError("rates must be positive")
        if self.rate_high < self.rate_low:
            raise ValueError("rate_high must be >= rate_low")
        if not 0.0 < self.switch_prob <= 1.0:
            raise ValueError("switch_prob must be in (0, 1]")

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate (states are symmetric)."""
        return 0.5 * (self.rate_low + self.rate_high)

    def sample(self, horizon: int, rng: np.random.Generator) -> List[int]:
        self._check_horizon(horizon)
        # Vectorized state path: switches are iid Bernoulli; cumulative
        # parity of switches selects the state each tick.
        switches = rng.random(horizon) < self.switch_prob
        parity = np.cumsum(switches) % 2
        start_high = rng.random() < 0.5
        high = parity == (0 if start_high else 1)
        rates = np.where(high, self.rate_high, self.rate_low)
        counts = rng.poisson(rates)
        return list(np.repeat(np.arange(horizon), counts))


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally-modulated Poisson process (day/night cycle).

    The instantaneous rate is
    ``base_rate * (1 + amplitude * sin(2*pi*(t/period + phase)))`` —
    the standard first-harmonic model of diurnal submission patterns in
    cluster traces. ``amplitude`` in [0, 1) keeps the rate positive.
    """

    base_rate: float
    amplitude: float = 0.6
    period: int = 48
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def mean_rate(self) -> float:
        """Long-run average rate (the sinusoid integrates to zero)."""
        return self.base_rate

    def rate_at(self, t: np.ndarray) -> np.ndarray:
        """Instantaneous rate at tick(s) ``t``."""
        cycle = np.sin(2.0 * np.pi * (np.asarray(t) / self.period + self.phase))
        return self.base_rate * (1.0 + self.amplitude * cycle)

    def sample(self, horizon: int, rng: np.random.Generator) -> List[int]:
        self._check_horizon(horizon)
        rates = self.rate_at(np.arange(horizon))
        counts = rng.poisson(rates)
        return list(np.repeat(np.arange(horizon), counts))


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """One arrival every ``period`` ticks, starting at ``offset``.

    Deterministic workloads make unit tests and worked examples exact.
    """

    period: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.offset < 0:
            raise ValueError("offset must be non-negative")

    def sample(self, horizon: int, rng: np.random.Generator) -> List[int]:  # noqa: ARG002
        self._check_horizon(horizon)
        return list(range(self.offset, horizon, self.period))
