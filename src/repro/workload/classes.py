"""Job classes: the statistical families jobs are sampled from.

A :class:`JobClass` bundles the distributions that define one workload
family — service demand, elasticity range, scaling law, per-platform
affinity, and deadline tightness. The default mix models the scenario the
paper's title implies: time-critical analysis jobs (tight deadlines, some
accelerator-friendly) sharing a heterogeneous cluster with elastic
best-effort batch work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.sim.job import Job
from repro.sim.speedup import AmdahlSpeedup, SpeedupModel

__all__ = ["JobClass", "default_job_classes"]


@dataclass(frozen=True)
class JobClass:
    """Distributional description of one family of jobs.

    Parameters
    ----------
    name:
        Class label carried into :attr:`repro.sim.Job.job_class`.
    mix_weight:
        Relative sampling probability within a workload mix.
    work_lognorm:
        ``(mu, sigma)`` of the log of service demand (reference unit-ticks).
        Lognormal demand gives the heavy tail real traces exhibit.
    parallelism_range:
        Inclusive bounds ``(min_lo, max_hi)`` from which the per-job
        elasticity window is drawn: ``min ~ U{min_lo..}``, ``max ~ U{..max_hi}``.
    serial_fraction:
        Amdahl ``sigma`` for the class's speedup model.
    affinity:
        Platform name -> speed factor (absent platform = cannot run).
    tightness_range:
        Deadline tightness ``tau`` bounds; deadline = arrival +
        ``tau * ideal_duration`` with ``tau`` uniform in the range. Lower
        is tighter (more time-critical).
    weight:
        Reward weight of jobs in this class (time-critical > best-effort).
    rigid:
        Force ``min == max`` parallelism (used by the E5 rigid ablation).
    """

    name: str
    mix_weight: float
    work_lognorm: Tuple[float, float]
    parallelism_range: Tuple[int, int]
    serial_fraction: float
    affinity: Dict[str, float]
    tightness_range: Tuple[float, float] = (1.5, 3.0)
    weight: float = 1.0
    rigid: bool = False

    def __post_init__(self) -> None:
        if self.mix_weight <= 0:
            raise ValueError("mix_weight must be positive")
        lo, hi = self.parallelism_range
        if lo < 1 or hi < lo:
            raise ValueError("invalid parallelism_range")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        t_lo, t_hi = self.tightness_range
        if t_lo <= 1.0 or t_hi < t_lo:
            raise ValueError("tightness bounds must satisfy 1 < lo <= hi")
        if not self.affinity:
            raise ValueError("class must run on at least one platform")

    def mean_work(self) -> float:
        """Expected service demand of the lognormal work distribution."""
        mu, sigma = self.work_lognorm
        return float(np.exp(mu + 0.5 * sigma * sigma))

    def speedup_model(self) -> SpeedupModel:
        """Speedup law instance for this class."""
        return AmdahlSpeedup(self.serial_fraction)

    def sample_job(
        self,
        arrival_time: int,
        rng: np.random.Generator,
        base_speeds: Dict[str, float],
        tightness_scale: float = 1.0,
    ) -> Job:
        """Draw one job of this class arriving at ``arrival_time``.

        ``base_speeds`` maps platform -> base speed, needed to anchor the
        deadline to the job's best-case (ideal) duration.
        ``tightness_scale`` multiplies the sampled tightness — the dial
        experiment E4 sweeps.
        """
        mu, sigma = self.work_lognorm
        work = float(rng.lognormal(mu, sigma))
        work = max(work, 1.0)
        lo, hi = self.parallelism_range
        k_min = int(rng.integers(lo, hi + 1))
        k_max = int(rng.integers(k_min, hi + 1))
        if self.rigid:
            k_max = k_min
        model = self.speedup_model()
        best_rate = max(
            self.affinity[p] * base_speeds[p] * model.speedup(k_max)
            for p in self.affinity
            if p in base_speeds
        )
        ideal = work / best_rate
        t_lo, t_hi = self.tightness_range
        tau = float(rng.uniform(t_lo, t_hi)) * tightness_scale
        # Deadline must stay strictly after arrival even for tiny jobs.
        deadline = arrival_time + max(tau * ideal, 1.0 + 1e-6)
        return Job(
            arrival_time=arrival_time,
            work=work,
            deadline=deadline,
            min_parallelism=k_min,
            max_parallelism=k_max,
            speedup_model=model,
            affinity=dict(self.affinity),
            job_class=self.name,
            weight=self.weight,
        )


def default_job_classes(
    cpu: str = "cpu", gpu: str = "gpu", rigid: bool = False
) -> List[JobClass]:
    """The standard 4-class mix used across the experiment suite.

    * ``tc-cpu``  — time-critical, CPU-bound, moderately elastic
    * ``tc-gpu``  — time-critical, accelerator-friendly (4x on GPU)
    * ``batch``   — best-effort, highly elastic, loose deadlines
    * ``rigid-svc`` — small rigid service jobs (elasticity-incompatible)
    """
    return [
        JobClass(
            name="tc-cpu",
            mix_weight=0.35,
            work_lognorm=(2.2, 0.55),
            parallelism_range=(1, 6),
            serial_fraction=0.08,
            affinity={cpu: 1.0, gpu: 0.8},
            tightness_range=(1.3, 2.2),
            weight=2.0,
            rigid=rigid,
        ),
        JobClass(
            name="tc-gpu",
            mix_weight=0.25,
            work_lognorm=(2.5, 0.6),
            parallelism_range=(1, 4),
            serial_fraction=0.12,
            affinity={cpu: 0.5, gpu: 4.0},
            tightness_range=(1.3, 2.5),
            weight=2.0,
            rigid=rigid,
        ),
        JobClass(
            name="batch",
            mix_weight=0.30,
            work_lognorm=(3.0, 0.7),
            parallelism_range=(1, 8),
            serial_fraction=0.05,
            affinity={cpu: 1.0, gpu: 1.2},
            tightness_range=(2.5, 5.0),
            weight=1.0,
            rigid=rigid,
        ),
        JobClass(
            name="rigid-svc",
            mix_weight=0.10,
            work_lognorm=(1.6, 0.4),
            parallelism_range=(1, 2),
            serial_fraction=0.30,
            affinity={cpu: 1.0},
            tightness_range=(1.5, 3.0),
            weight=1.5,
            rigid=True,
        ),
    ]
