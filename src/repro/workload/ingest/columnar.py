"""Configurable columnar-CSV trace adapter.

Google/Alibaba-style cluster traces ship as (often gzipped) CSV tables
whose column names and units differ per archive. Rather than one parser
per archive, a :class:`ColumnarSpec` declares the mapping from columns
to :class:`~repro.workload.ingest.records.RawJobRecord` fields plus the
time unit and sentinel conventions; :func:`parse_columnar` then handles
any of them. Two presets cover the common layouts.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.workload.ingest.records import RawJobRecord, TraceMeta, open_text

__all__ = ["ColumnarSpec", "parse_columnar", "parse_columnar_lines",
           "read_columnar", "GOOGLE_LIKE_SPEC", "ALIBABA_LIKE_SPEC"]

_TIME_SCALE = {"s": 1.0, "ms": 1e-3, "us": 1e-6}


@dataclass(frozen=True)
class ColumnarSpec:
    """Declarative mapping from CSV columns to raw-record fields.

    ``columns`` maps record-field name (``submit_time``, ``run_time``,
    ``processors``, optionally ``job_id``, ``wait_time``,
    ``requested_time``, ``requested_processors``, ``status``, ``user``)
    to the CSV column header (``has_header=True``) or 0-based column
    index (``has_header=False``, given as the stringified index). The
    two mandatory fields are ``submit_time`` and ``run_time``.

    ``end_time_column``: some archives record start/end instead of a
    runtime; when set, ``run_time = end - start`` is derived and the
    ``run_time`` mapping names the *start* column.
    """

    columns: Tuple[Tuple[str, str], ...]
    delimiter: str = ","
    has_header: bool = True
    time_unit: str = "s"
    end_time_column: Optional[str] = None
    sentinel_values: Tuple[str, ...] = ("", "-1", "NULL", "null", "None")

    def __post_init__(self) -> None:
        mapping = dict(self.columns)
        for required in ("submit_time", "run_time"):
            if required not in mapping:
                raise ValueError(
                    f"ColumnarSpec.columns must map {required!r} to a column")
        if self.time_unit not in _TIME_SCALE:
            raise ValueError(
                f"time_unit must be one of {sorted(_TIME_SCALE)}, "
                f"got {self.time_unit!r}")
        if not self.delimiter:
            raise ValueError("delimiter must be non-empty")

    def mapping(self) -> Dict[str, str]:
        return dict(self.columns)


#: Google cluster-trace-like layout: microsecond timestamps, job events
#: keyed by job id with a scheduling class column.
GOOGLE_LIKE_SPEC = ColumnarSpec(
    columns=(
        ("job_id", "job_id"),
        ("submit_time", "submit_time"),
        ("run_time", "start_time"),
        ("processors", "cpus"),
        ("status", "status"),
        ("user", "user"),
    ),
    time_unit="us",
    end_time_column="end_time",
)

#: Alibaba cluster-trace-like layout: second timestamps, start/end pairs.
ALIBABA_LIKE_SPEC = ColumnarSpec(
    columns=(
        ("job_id", "job_id"),
        ("submit_time", "submit_time"),
        ("run_time", "start_time"),
        ("processors", "plan_cpu"),
        ("status", "status"),
    ),
    time_unit="s",
    end_time_column="end_time",
)


def _parse_value(raw: Optional[str], spec: ColumnarSpec) -> float:
    if raw is None:
        return -1.0
    raw = raw.strip()
    if raw in spec.sentinel_values:
        return -1.0
    try:
        return float(raw)
    except ValueError:
        return -1.0


def _resolve_columns(reader, spec: ColumnarSpec) -> Optional[Dict[str, int]]:
    """Field -> column-index map, consuming the header row when present.

    Returns ``None`` for a header-bearing stream with no rows at all.
    """
    mapping = spec.mapping()
    if not spec.has_header:
        col_index = {fld: int(col) for fld, col in mapping.items()}
        if spec.end_time_column is not None:
            col_index["__end__"] = int(spec.end_time_column)
        return col_index
    try:
        header_row = next(reader)
    except StopIteration:
        return None
    positions = {name.strip(): i for i, name in enumerate(header_row)}
    col_index = {}
    for fld, col in mapping.items():
        if col not in positions:
            raise ValueError(
                f"column {col!r} (for field {fld!r}) not in CSV header "
                f"{sorted(positions)}")
        col_index[fld] = positions[col]
    if spec.end_time_column is not None:
        if spec.end_time_column not in positions:
            raise ValueError(
                f"end_time_column {spec.end_time_column!r} not in CSV "
                f"header {sorted(positions)}")
        col_index["__end__"] = positions[spec.end_time_column]
    return col_index


def _iter_rows(reader, col_index: Dict[str, int], spec: ColumnarSpec,
               skip_counter: Optional[List[int]] = None
               ) -> Iterator[RawJobRecord]:
    """Stream records out of CSV ``reader`` rows (shared by both paths)."""
    scale = _TIME_SCALE[spec.time_unit]
    auto_id = 0
    for row in reader:
        if not row or all(not cell.strip() for cell in row):
            continue

        def get(fld: str) -> float:
            idx = col_index.get(fld)
            if idx is None or idx >= len(row):
                return -1.0
            return _parse_value(row[idx], spec)

        submit = get("submit_time")
        start = get("run_time")
        if submit < 0:
            if skip_counter is not None:
                skip_counter[0] += 1
            continue
        if spec.end_time_column is not None:
            end = get("__end__")
            run = (end - start) if (end >= 0 and start >= 0) else -1.0
        else:
            run = start
        auto_id += 1
        job_id = get("job_id")
        yield RawJobRecord(
            job_id=int(job_id) if job_id >= 0 else auto_id,
            submit_time=submit * scale,
            wait_time=get("wait_time") * scale if get("wait_time") >= 0 else -1.0,
            run_time=run * scale if run >= 0 else -1.0,
            processors=int(p) if (p := get("processors")) > 0 else -1,
            requested_time=(rt * scale
                            if (rt := get("requested_time")) >= 0 else -1.0),
            requested_processors=(int(rp)
                                  if (rp := get("requested_processors")) > 0
                                  else -1),
            status=int(s) if (s := get("status")) >= 0 else -1,
            user=int(u) if (u := get("user")) >= 0 else -1,
        )


def parse_columnar_lines(lines, spec: ColumnarSpec, source: str = "<lines>"
                         ) -> Tuple[TraceMeta, List[RawJobRecord]]:
    """Parse CSV ``lines`` according to ``spec`` into (meta, records)."""
    reader = csv.reader(lines, delimiter=spec.delimiter)
    col_index = _resolve_columns(reader, spec)
    if col_index is None:
        return TraceMeta(source=source, format="columnar"), []
    skip_counter = [0]
    records = list(_iter_rows(reader, col_index, spec, skip_counter))
    meta = TraceMeta(source=source, format="columnar",
                     n_records=len(records), n_skipped=skip_counter[0],
                     n_unusable=sum(1 for r in records if not r.usable()))
    return meta, records


def parse_columnar(path: str, spec: ColumnarSpec
                   ) -> Tuple[TraceMeta, List[RawJobRecord]]:
    """Parse a columnar CSV trace file (plain or ``.gz``)."""
    with open_text(path) as fh:
        meta, records = parse_columnar_lines(fh, spec, source=str(path))
    return meta, records


def read_columnar(path: str, spec: ColumnarSpec) -> Iterator[RawJobRecord]:
    """Stream records from a columnar CSV file without materializing.

    The streaming sibling of :func:`parse_columnar` (mirrors
    :func:`repro.workload.ingest.swf.read_swf`): unparsable rows are
    skipped; use :func:`parse_columnar` when the meta block or skip
    count is needed.
    """
    with open_text(path) as fh:
        reader = csv.reader(fh, delimiter=spec.delimiter)
        col_index = _resolve_columns(reader, spec)
        if col_index is None:
            return
        yield from _iter_rows(reader, col_index, spec)
