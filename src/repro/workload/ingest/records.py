"""Raw trace records: the format-neutral intermediate of ingestion.

Every adapter (SWF, columnar CSV) parses its archive into a stream of
:class:`RawJobRecord` — plain numbers in *seconds* and *processors*,
with ``-1`` preserved as the archives' "unknown" sentinel — plus one
:class:`TraceMeta` describing the source. Normalization
(:mod:`repro.workload.ingest.normalize`) then maps records into the
repo's :class:`~repro.sim.job.Job` model independently of where they
came from.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from typing import IO, Dict, Sequence, Tuple

__all__ = ["RawJobRecord", "TraceMeta", "record_stats", "open_text"]


def open_text(path: str) -> IO[str]:
    """Open an archive file for text reading, gunzipping ``*.gz`` paths.

    Decoding errors are replaced, not raised — archive logs occasionally
    carry stray bytes in comment fields.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return open(path, encoding="utf-8", errors="replace")

#: Archive sentinel for "unknown / not applicable".
UNKNOWN = -1.0


@dataclass(frozen=True)
class RawJobRecord:
    """One job as the archive recorded it (times in seconds).

    Field semantics follow the Standard Workload Format; the columnar
    adapter maps its columns onto the same names. ``-1`` means the
    archive did not record the value.
    """

    job_id: int
    submit_time: float          # seconds since trace start
    wait_time: float = UNKNOWN  # seconds in queue
    run_time: float = UNKNOWN   # seconds of execution
    processors: int = -1        # processors actually allocated
    requested_time: float = UNKNOWN   # user runtime estimate (seconds)
    requested_processors: int = -1
    status: int = -1            # SWF: 1 completed, 0 failed, 5 cancelled
    user: int = -1
    group: int = -1

    def usable(self) -> bool:
        """Whether the record carries enough signal to become a job."""
        return self.submit_time >= 0 and self.run_time > 0 and self.width() > 0

    def width(self) -> int:
        """Best-known processor count (allocated, else requested)."""
        if self.processors > 0:
            return self.processors
        if self.requested_processors > 0:
            return self.requested_processors
        return -1


@dataclass(frozen=True)
class TraceMeta:
    """Provenance and header information for one parsed archive."""

    source: str                      # file name or label
    format: str                      # "swf" | "columnar"
    max_procs: int = -1              # header MaxProcs, if present
    unix_start_time: int = -1        # header UnixStartTime, if present
    n_records: int = 0               # records parsed
    n_skipped: int = 0               # lines/records dropped while parsing
    n_unusable: int = 0              # parsed records failing usable()
    header: Tuple[Tuple[str, str], ...] = ()   # raw header key/value pairs


def record_stats(records: Sequence[RawJobRecord]) -> Dict[str, float]:
    """Summary statistics of a raw record stream (for ``trace stats``)."""
    if not records:
        return {"n_jobs": 0}
    usable = [r for r in records if r.usable()]
    submits = [r.submit_time for r in records]
    span = max(submits) - min(submits)
    runtimes = sorted(r.run_time for r in usable) or [0.0]
    widths = sorted(r.width() for r in usable) or [0]
    total_core_seconds = sum(r.run_time * r.width() for r in usable)

    def pct(values, q):
        if not values:
            return 0.0
        idx = min(len(values) - 1, int(q * (len(values) - 1)))
        return float(values[idx])

    return {
        "n_jobs": len(records),
        "n_usable": len(usable),
        "n_unusable": len(records) - len(usable),
        "n_zero_runtime": sum(1 for r in records if r.run_time == 0),
        "span_seconds": float(span),
        "mean_interarrival_s": float(span / max(1, len(records) - 1)),
        "runtime_p50_s": pct(runtimes, 0.5),
        "runtime_p95_s": pct(runtimes, 0.95),
        "mean_runtime_s": float(sum(runtimes) / len(runtimes)),
        "width_p50": pct(widths, 0.5),
        "width_max": float(max(widths)),
        "total_core_seconds": float(total_core_seconds),
    }
