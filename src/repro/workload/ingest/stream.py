"""Two-pass streaming normalization for archive-scale logs.

:func:`repro.workload.ingest.normalize.normalize_records` materializes
the full record list — its sort and its target-load probe need random
access — so a multi-million-job archive (a Parallel Workloads Archive
SWF log, a Google/Alibaba columnar table) cannot be normalized on
bounded memory. This module provides the streaming sibling:

* **Pass 1** streams the raw records once and accumulates exactly what
  the materialized path derives from the full list: the first usable
  submit time ``t0``, the selection counts, the clamp counts, and — when
  ``target_load`` is set — the offered-load probe (per-record demand
  summed in selection order, arrival-tick span), reproducing the
  materialized ``measured_load`` float-for-float.
* **Pass 2** re-streams the records, re-derives the same selection
  decisions, and emits :class:`~repro.sim.job.Job` objects chunk by
  chunk.

Byte-identity with the materialized path rests on two invariants of
:mod:`~repro.workload.ingest.normalize`:

1. every stochastic draw is *counter-based* — a pure function of
   ``(seed, stream, index)`` — so the streamed path reads the same
   numbers without holding the whole trace;
2. quantized arrival ticks are monotone in submit time, so the
   materialized path's final arrival sort is a no-op on records
   processed in submit order, and streamed emission order equals
   materialized list order.

The price of streaming is an ordering requirement: the record stream
must already be sorted by the normalizer's deterministic record order
(submit time, job id, then field tie-breakers) — true of SWF logs and
of time-ordered columnar dumps. An out-of-order stream raises
:class:`ValueError` naming the offending record; fall back to
``normalize_records`` (which sorts) for such archives.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.sim.job import Job
from repro.sim.platform import Platform
from repro.workload.ingest.columnar import ColumnarSpec, read_columnar
from repro.workload.ingest.normalize import (
    _UNIFORM_BLOCK,
    _SUBSAMPLE_STREAM,
    IngestConfig,
    IngestStats,
    _affinity_for,
    _demand_model,
    _emit_job,
    _job_demand,
    _record_order,
    _synthesis_arrays,
    _uniform_block,
)
from repro.workload.ingest.records import RawJobRecord
from repro.workload.ingest.spill import SpilledSortedRecords
from repro.workload.ingest.swf import read_swf

__all__ = ["stream_normalize", "stream_normalize_swf",
           "stream_normalize_columnar"]

RecordFactory = Callable[[], Iterable[RawJobRecord]]

#: Selected records buffered per synthesis batch in pass 2 — the only
#: O(chunk) state the streaming path holds.
DEFAULT_CHUNK = 2048


def _iter_selected(records: Iterable[RawJobRecord], config: IngestConfig,
                   stats: Optional[IngestStats] = None,
                   stop_after_cap: bool = False,
                   ) -> Iterator[Tuple[int, RawJobRecord]]:
    """Yield ``(selected_index, record)`` for a *sorted* record stream.

    Re-derives the materialized :func:`~.normalize._select` decisions
    one record at a time: usability/status filter, window relative to
    the first usable submit, the counter-based subsample draw at the
    record's windowed position, and the ``max_jobs`` cap. (The arrival
    axis is anchored elsewhere — at the first *selected* submit, as in
    the materialized path.) Raises ``ValueError`` if the stream is not
    sorted by the normalizer's record order. ``stop_after_cap`` returns
    at the first over-cap record (pass 2); otherwise the scan continues
    so ``stats`` counts the full stream (pass 1).
    """
    allowed = set(config.include_statuses) \
        if config.include_statuses is not None else None
    window = config.window
    thinning = config.subsample < 1.0
    t0: Optional[float] = None
    prev_key = None
    windowed_idx = 0
    selected_idx = 0
    block_id = -1
    block_values = None
    for r in records:
        if stats is not None:
            stats.n_records += 1
        if not r.usable():
            if stats is not None:
                stats.n_unusable += 1
            continue
        if allowed is not None and r.status not in allowed:
            if stats is not None:
                stats.n_status_filtered += 1
            continue
        key = _record_order(r)
        if prev_key is not None and key < prev_key:
            raise ValueError(
                f"record stream is not sorted by (submit_time, job_id): "
                f"job {r.job_id} at submit {r.submit_time} arrived after "
                f"a later record; use normalize_records (which sorts) "
                f"for out-of-order archives")
        prev_key = key
        if t0 is None:
            t0 = r.submit_time
        if window is not None:
            lo, hi = window
            if not (lo <= r.submit_time - t0 < hi):
                if stats is not None:
                    stats.n_windowed_out += 1
                continue
        if thinning:
            block, offset = divmod(windowed_idx, _UNIFORM_BLOCK)
            if block != block_id:
                block_values = _uniform_block(
                    config.seed, _SUBSAMPLE_STREAM, block, 1)[:, 0]
                block_id = block
            windowed_idx += 1
            if not (block_values[offset] < config.subsample):
                if stats is not None:
                    stats.n_subsampled_out += 1
                continue
        if config.max_jobs is not None and selected_idx >= config.max_jobs:
            if stop_after_cap:
                return
            if stats is not None:
                stats.n_over_cap += 1
            continue
        yield selected_idx, r
        selected_idx += 1
        if stats is not None:
            stats.n_selected += 1


def _first_pass(records_factory: RecordFactory, config: IngestConfig,
                platforms: Sequence[Platform],
                stats: Optional[IngestStats]) -> float:
    """Scan the stream once; return the arrival-axis ``scale``.

    Accumulates the clamp counts into ``stats`` and — when
    ``target_load`` is set — the same offered-load probe the
    materialized path computes from its probe job list: demand summed
    in selection order over the probe's seeded affinities, divided by
    cluster capacity times the quantized arrival span.
    """
    need_probe = config.target_load is not None
    capacity = sum(p.capacity for p in platforms)
    demand = 0.0
    min_arrival: Optional[int] = None
    max_arrival: Optional[int] = None
    # Probe affinities draw from config.seed (the scenario's time axis
    # is a property of the config, not the per-trace seed).
    probe_start = 0
    has_accel = len(platforms) > 1
    primary = platforms[0]
    accel = platforms[1] if has_accel else None
    arrival_t0: Optional[float] = None   # first *selected* submit time
    chunk_records: List[Tuple[RawJobRecord, float]] = []   # (record, work)

    def flush_probe() -> None:
        nonlocal demand, min_arrival, max_arrival, probe_start
        if not chunk_records:
            return
        _, on_accel, _, _ = _synthesis_arrays(
            config.seed, probe_start, len(chunk_records), config, has_accel)
        for j, (r, work) in enumerate(chunk_records):
            affinity = _affinity_for(on_accel[j], primary, accel, config)
            arrival = max(0, int(round(
                (r.submit_time - arrival_t0) * 1.0 / config.tick_seconds)))
            demand += _job_demand(work, affinity, platforms)
            if min_arrival is None or arrival < min_arrival:
                min_arrival = arrival
            if max_arrival is None or arrival > max_arrival:
                max_arrival = arrival
        probe_start += len(chunk_records)
        chunk_records.clear()

    # Without stats to fill, nothing is learned from records past the
    # max_jobs cap — stop the scan there instead of paying O(archive).
    for idx, r in _iter_selected(records_factory(), config, stats,
                                 stop_after_cap=stats is None):
        if arrival_t0 is None:
            arrival_t0 = r.submit_time
        _, _, _, work, clamped_d, clamped_w = _demand_model(r, config)
        if stats is not None:
            stats.n_clamped_duration += clamped_d
            stats.n_clamped_work += clamped_w
        if need_probe:
            chunk_records.append((r, work))
            if len(chunk_records) >= DEFAULT_CHUNK:
                flush_probe()
    if not need_probe:
        return 1.0
    flush_probe()
    if max_arrival is None:        # nothing selected
        return 1.0
    span = max(1, max_arrival - min_arrival)
    load_now = demand / (capacity * span)
    if load_now > 0:
        return load_now / config.target_load
    return 1.0


def _second_pass(records_factory: RecordFactory, config: IngestConfig,
                 platforms: Sequence[Platform], effective_seed: int,
                 scale: float, chunk_size: int) -> Iterator[Job]:
    """Re-stream the records and emit jobs chunk by chunk."""
    primary = platforms[0]
    accel = platforms[1] if len(platforms) > 1 else None
    has_accel = accel is not None
    base_speeds = {p.name: p.base_speed for p in platforms}
    chunk: List[RawJobRecord] = []
    start = 0
    arrival_t0: Optional[float] = None   # first *selected* submit time

    def emit_chunk() -> Iterator[Job]:
        nonlocal start
        is_tc, on_accel, tc_tau, be_tau = _synthesis_arrays(
            effective_seed, start, len(chunk), config, has_accel)
        for j, r in enumerate(chunk):
            width, model, _, work, _, _ = _demand_model(r, config)
            arrival_tick = int(round(
                (r.submit_time - arrival_t0) * scale / config.tick_seconds))
            yield _emit_job(arrival_tick, width, model, work,
                            is_tc[j], on_accel[j], tc_tau[j], be_tau[j],
                            primary, accel, base_speeds, config)
        start += len(chunk)
        chunk.clear()

    for _, r in _iter_selected(records_factory(), config,
                               stop_after_cap=True):
        if arrival_t0 is None:
            arrival_t0 = r.submit_time
        chunk.append(r)
        if len(chunk) >= chunk_size:
            yield from emit_chunk()
    if chunk:
        yield from emit_chunk()


def stream_normalize(
    records_factory: RecordFactory,
    config: IngestConfig,
    platforms: Sequence[Platform],
    seed: Optional[int] = None,
    stats: Optional[IngestStats] = None,
    chunk_size: int = DEFAULT_CHUNK,
    on_unsorted: str = "raise",
) -> Iterator[Job]:
    """Normalize a re-streamable record source in bounded memory.

    ``records_factory`` is called once per pass and must yield the same
    records each time (e.g. ``lambda: read_swf(path)``), sorted by the
    normalizer's record order (submit time, job id, tie-breakers) —
    archive logs are; an out-of-order stream raises ``ValueError``
    unless ``on_unsorted="spill"``.

    With ``on_unsorted="spill"`` the source is first externally
    merge-sorted through :class:`~.spill.SpilledSortedRecords`: read
    once, sorted ``chunk`` by ``chunk``, spilled to temporary
    ``.jsonl.gz`` run files, then both passes k-way-merge the runs —
    still bounded memory, and the archive itself is parsed only once.
    Use it when the archive's ordering is unknown; the output is the
    same either way.

    The emitted job stream is **byte-identical** to
    ``normalize_records(list(records_factory()), config, platforms,
    seed)`` — same floats, same order — while holding only
    ``chunk_size`` selected records at a time. ``stats`` (filled during
    pass 1, i.e. complete as soon as this function returns) receives
    the same :class:`~.normalize.IngestStats` counts the materialized
    path reports.

    Pass 1 is skipped entirely — making this single-pass — when neither
    ``target_load`` nor ``stats`` asks for whole-stream aggregates.
    """
    if not platforms:
        raise ValueError("need at least one platform")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if on_unsorted not in ("raise", "spill"):
        raise ValueError('on_unsorted must be "raise" or "spill"')
    if on_unsorted == "spill":
        records_factory = SpilledSortedRecords(records_factory)
    effective_seed = config.seed if seed is None else seed
    scale = 1.0
    if config.target_load is not None or stats is not None:
        scale = _first_pass(records_factory, config, platforms, stats)
    return _second_pass(records_factory, config, platforms,
                        effective_seed, scale, chunk_size)


def stream_normalize_swf(
    path: str,
    config: IngestConfig,
    platforms: Sequence[Platform],
    seed: Optional[int] = None,
    stats: Optional[IngestStats] = None,
    chunk_size: int = DEFAULT_CHUNK,
    on_unsorted: str = "raise",
) -> Iterator[Job]:
    """Streamed normalization of an SWF file (plain or ``.gz``)."""
    return stream_normalize(lambda: read_swf(path), config, platforms,
                            seed=seed, stats=stats, chunk_size=chunk_size,
                            on_unsorted=on_unsorted)


def stream_normalize_columnar(
    path: str,
    spec: ColumnarSpec,
    config: IngestConfig,
    platforms: Sequence[Platform],
    seed: Optional[int] = None,
    stats: Optional[IngestStats] = None,
    chunk_size: int = DEFAULT_CHUNK,
    on_unsorted: str = "raise",
) -> Iterator[Job]:
    """Streamed normalization of a columnar CSV file (plain or ``.gz``)."""
    return stream_normalize(lambda: read_columnar(path, spec), config,
                            platforms, seed=seed, stats=stats,
                            chunk_size=chunk_size, on_unsorted=on_unsorted)
