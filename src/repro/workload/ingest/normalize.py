"""Normalization: raw archive records -> the repo's :class:`Job` model.

The archives record *what happened* (submit time, runtime, processor
count); the simulator needs *what was demanded* (work units, elasticity
window, scaling law, platform eligibility, deadline, class). The mapping
is configured by one frozen :class:`IngestConfig` so that the whole
pipeline is a pure function

    ``normalize_records(records, config, platforms, seed) -> List[Job]``

— deterministic given its inputs, which is what makes imported traces
first-class citizens of the result cache: the config (plus the record
stream) *is* the fingerprint.

Stages, in order:

1. **Filter** — drop unusable records (no runtime / width), optionally
   restrict to given SWF status codes.
2. **Window / cap / subsample** — keep a ``[start, end)`` second-window
   relative to the first submit, at most ``max_jobs`` records, and a
   seeded ``subsample`` fraction (thinning preserves the arrival
   pattern's shape).
3. **Quantize & rescale** — map submit seconds to integer ticks
   (``tick_seconds`` per tick) and optionally stretch/compress the
   arrival axis so the measured offered load hits ``target_load``.
4. **Work & elasticity** — the archive ran the job on ``p`` processors
   in ``run_time`` seconds; the job's demand in reference unit-ticks is
   therefore ``duration_ticks * speedup(p)``. ``p`` bounds the
   elasticity window (``max = p``, ``min = ceil(p * min_frac)``) and
   selects a fitted Amdahl serial fraction (wider jobs scale better —
   the standard observation the per-width interpolation encodes).
5. **Synthesis** — archives carry no deadlines or platform affinities.
   A seeded draw assigns each job time-critical or best-effort class,
   platform eligibility (an ``accel_fraction`` of jobs also run —
   faster — on the accelerator platform), and a slack-drawn deadline
   ``arrival + tau * ideal_duration`` exactly like the synthetic
   generator's classes, so imported and generated traces stress the
   same mechanisms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.job import Job
from repro.sim.platform import Platform
from repro.sim.speedup import AmdahlSpeedup
from repro.workload.ingest.records import RawJobRecord

__all__ = ["IngestConfig", "normalize_records", "measured_load",
           "TC_CLASS", "BE_CLASS"]

#: Class labels carried into ``Job.job_class`` by deadline synthesis.
TC_CLASS = "tc-trace"
BE_CLASS = "be-trace"


@dataclass(frozen=True)
class IngestConfig:
    """Everything that parameterizes record -> Job normalization.

    The config is frozen and fully structural, so it can be part of a
    persistent cache fingerprint; ``seed`` drives every stochastic
    synthesis step (class assignment, affinity draw, deadline
    tightness). Subsampling and the target-load rescale always draw
    from ``config.seed`` — not a per-trace override — so the selected
    record set and time axis are properties of the config.
    """

    # --- time ----------------------------------------------------------
    tick_seconds: float = 60.0          # archive seconds per simulator tick
    window: Optional[Tuple[float, float]] = None   # [start, end) seconds
    max_jobs: Optional[int] = None
    subsample: float = 1.0              # keep fraction in (0, 1]
    target_load: Optional[float] = None  # rescale arrivals to this load

    # --- elasticity / scaling -----------------------------------------
    max_parallelism_cap: int = 16       # clip archive widths to the model
    min_parallelism_frac: float = 0.25  # min = ceil(frac * max)
    sigma_range: Tuple[float, float] = (0.03, 0.30)  # Amdahl fit endpoints

    # --- class / deadline / affinity synthesis ------------------------
    time_critical_fraction: float = 0.4
    tc_tightness: Tuple[float, float] = (1.3, 2.5)
    be_tightness: Tuple[float, float] = (2.5, 5.0)
    tc_weight: float = 2.0
    be_weight: float = 1.0
    accel_fraction: float = 0.25        # share of jobs eligible for accel
    accel_affinity: float = 4.0         # their speed factor there
    accel_cpu_penalty: float = 0.5      # accel-friendly jobs' CPU factor

    # --- filtering -----------------------------------------------------
    include_statuses: Optional[Tuple[int, ...]] = None  # None = keep all
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if self.max_jobs is not None and self.max_jobs <= 0:
            raise ValueError("max_jobs must be positive")
        if self.window is not None:
            lo, hi = self.window
            if hi <= lo:
                raise ValueError("window must satisfy start < end")
        if self.target_load is not None and self.target_load <= 0:
            raise ValueError("target_load must be positive")
        if self.max_parallelism_cap < 1:
            raise ValueError("max_parallelism_cap must be >= 1")
        if not 0.0 < self.min_parallelism_frac <= 1.0:
            raise ValueError("min_parallelism_frac must be in (0, 1]")
        lo, hi = self.sigma_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError("sigma_range must satisfy 0 <= lo <= hi <= 1")
        if not 0.0 <= self.time_critical_fraction <= 1.0:
            raise ValueError("time_critical_fraction must be in [0, 1]")
        for name, rng_ in (("tc_tightness", self.tc_tightness),
                           ("be_tightness", self.be_tightness)):
            t_lo, t_hi = rng_
            if t_lo <= 1.0 or t_hi < t_lo:
                raise ValueError(f"{name} must satisfy 1 < lo <= hi")
        if not 0.0 <= self.accel_fraction <= 1.0:
            raise ValueError("accel_fraction must be in [0, 1]")
        if self.accel_affinity <= 0 or self.accel_cpu_penalty <= 0:
            raise ValueError("affinity factors must be positive")


def _fitted_sigma(width: int, config: IngestConfig) -> float:
    """Amdahl serial fraction fitted from the archive's processor count.

    Jobs the archive ran wide demonstrably scale, so they get a small
    serial fraction; single-processor jobs get the large endpoint. The
    interpolation is logarithmic in width (doubling the width halves the
    remaining serial share), deterministic — no RNG.
    """
    lo, hi = config.sigma_range
    cap = max(2, config.max_parallelism_cap)
    frac = min(1.0, math.log2(max(1, width)) / math.log2(cap))
    return hi - (hi - lo) * frac


def _select(records: Sequence[RawJobRecord],
            config: IngestConfig) -> List[RawJobRecord]:
    """Stages 1-2: filter, window, cap, subsample (in that order).

    The subsample draw comes from ``config.seed`` — never the per-trace
    seed — so the *selected record set* (and with it the arrival axis
    and the target-load rescale) is a property of the scenario: paired
    per-seed trace variants always share identical arrivals and demands.
    """
    usable = [r for r in records if r.usable()]
    if config.include_statuses is not None:
        allowed = set(config.include_statuses)
        usable = [r for r in usable if r.status in allowed]
    usable.sort(key=lambda r: (r.submit_time, r.job_id))
    if not usable:
        return []
    t0 = usable[0].submit_time
    if config.window is not None:
        lo, hi = config.window
        usable = [r for r in usable if lo <= r.submit_time - t0 < hi]
    if config.subsample < 1.0 and usable:
        thin_rng = np.random.default_rng(config.seed)
        keep = thin_rng.random(len(usable)) < config.subsample
        usable = [r for r, k in zip(usable, keep) if k]
    if config.max_jobs is not None:
        usable = usable[:config.max_jobs]
    return usable


def measured_load(jobs: Sequence[Job], platforms: Sequence[Platform]) -> float:
    """Offered load of a concrete job list on ``platforms``.

    Mirrors :func:`repro.workload.generator.offered_load` but measures a
    realized trace instead of a statistical mix: per-job demand is its
    work divided by the capacity-weighted mean unit service rate over
    the platforms it can run on, summed and divided by cluster capacity
    times the arrival span.
    """
    if not jobs:
        return 0.0
    capacity = sum(p.capacity for p in platforms)
    span = max(j.arrival_time for j in jobs) - min(j.arrival_time for j in jobs)
    span = max(1, span)
    demand = 0.0
    for job in jobs:
        total_cap = 0
        weighted = 0.0
        for p in platforms:
            if p.name in job.affinity:
                total_cap += p.capacity
                weighted += job.affinity[p.name] * p.base_speed * p.capacity
        if total_cap == 0:
            raise ValueError(
                f"job {job.job_id} runs on no provided platform "
                f"(affinity {sorted(job.affinity)})")
        demand += job.work / (weighted / total_cap)
    return demand / (capacity * span)


def normalize_records(
    records: Sequence[RawJobRecord],
    config: IngestConfig,
    platforms: Sequence[Platform],
    seed: Optional[int] = None,
) -> List[Job]:
    """Map raw archive records into simulator jobs (pure, seeded).

    ``seed`` overrides ``config.seed`` — the trace-backed scenarios use
    this to draw *paired* trace variants (same arrivals and demands,
    fresh class/deadline synthesis) from one archive, exactly as the
    synthetic generator draws paired traces from one workload config.

    ``platforms`` anchors deadline synthesis (best-case durations need
    base speeds) and, when ``config.target_load`` is set, the load
    rescaling. The first platform is the primary (CPU-like) pool every
    job may run on; the second, if present, is the accelerator pool an
    ``accel_fraction`` of jobs also run on.
    """
    if not platforms:
        raise ValueError("need at least one platform")
    effective_seed = config.seed if seed is None else seed
    rng = np.random.default_rng(effective_seed)

    selected = _select(records, config)
    if not selected:
        return []

    primary = platforms[0]
    accel = platforms[1] if len(platforms) > 1 else None
    base_speeds = {p.name: p.base_speed for p in platforms}

    t0 = selected[0].submit_time
    arrivals_s = np.array([r.submit_time - t0 for r in selected])

    # Stage 4: work / elasticity / scaling law, before any load math —
    # the demand numbers are what the load measurement needs.
    widths = [min(max(1, r.width()), config.max_parallelism_cap)
              for r in selected]
    models = [AmdahlSpeedup(round(_fitted_sigma(w, config), 6))
              for w in widths]
    duration_ticks = [max(r.run_time / config.tick_seconds, 1e-9)
                      for r in selected]
    works = [max(1.0, d * m.speedup(w))
             for d, m, w in zip(duration_ticks, models, widths)]

    # Stage 5 draws, all from the one seeded stream, one batch per
    # synthesis aspect so the draw count per job is fixed.
    def synthesis_draws(draw_rng: np.random.Generator):
        n = len(selected)
        is_tc = draw_rng.random(n) < config.time_critical_fraction
        on_accel = (draw_rng.random(n) < config.accel_fraction) \
            if accel is not None else np.zeros(n, dtype=bool)
        tc_tau = draw_rng.uniform(*config.tc_tightness, size=n)
        be_tau = draw_rng.uniform(*config.be_tightness, size=n)
        return is_tc, on_accel, tc_tau, be_tau

    is_tc, on_accel, tc_tau, be_tau = synthesis_draws(rng)

    # Stage 3b: arrival quantization, optionally rescaled to target load.
    def ticks_for(scale: float) -> List[int]:
        return [int(round(a * scale / config.tick_seconds))
                for a in arrivals_s]

    scale = 1.0
    if config.target_load is not None:
        # The rescale factor is a property of the *scenario* (it sets the
        # simulated time axis), so the probe always draws its synthesis
        # from ``config.seed``: paired per-seed trace variants then share
        # identical arrival ticks, differing only in class/deadline draws.
        probe_draws = synthesis_draws(np.random.default_rng(config.seed))
        probe = _build_jobs(selected, ticks_for(1.0), widths, models, works,
                            *probe_draws,
                            primary, accel, base_speeds, config)
        load_now = measured_load(probe, platforms)
        if load_now > 0:
            scale = load_now / config.target_load
    jobs = _build_jobs(selected, ticks_for(scale), widths, models, works,
                       is_tc, on_accel, tc_tau, be_tau,
                       primary, accel, base_speeds, config)
    return jobs


def _build_jobs(selected, arrival_ticks, widths, models, works,
                is_tc, on_accel, tc_tau, be_tau,
                primary: Platform, accel: Optional[Platform],
                base_speeds, config: IngestConfig) -> List[Job]:
    jobs: List[Job] = []
    for i in range(len(selected)):
        k_max = widths[i]
        k_min = max(1, int(math.ceil(k_max * config.min_parallelism_frac)))
        model = models[i]
        if accel is not None and on_accel[i]:
            affinity = {primary.name: config.accel_cpu_penalty,
                        accel.name: config.accel_affinity}
        else:
            affinity = {primary.name: 1.0}
        best_rate = max(affinity[p] * base_speeds[p] * model.speedup(k_max)
                        for p in affinity)
        ideal = works[i] / best_rate
        tau = float(tc_tau[i] if is_tc[i] else be_tau[i])
        arrival = max(0, int(arrival_ticks[i]))
        jobs.append(Job(
            arrival_time=arrival,
            work=float(works[i]),
            deadline=arrival + max(tau * ideal, 1.0 + 1e-6),
            min_parallelism=k_min,
            max_parallelism=k_max,
            speedup_model=model,
            affinity=affinity,
            job_class=TC_CLASS if is_tc[i] else BE_CLASS,
            weight=config.tc_weight if is_tc[i] else config.be_weight,
        ))
    jobs.sort(key=lambda j: j.arrival_time)
    return jobs
