"""Normalization: raw archive records -> the repo's :class:`Job` model.

The archives record *what happened* (submit time, runtime, processor
count); the simulator needs *what was demanded* (work units, elasticity
window, scaling law, platform eligibility, deadline, class). The mapping
is configured by one frozen :class:`IngestConfig` so that the whole
pipeline is a pure function

    ``normalize_records(records, config, platforms, seed) -> List[Job]``

— deterministic given its inputs, which is what makes imported traces
first-class citizens of the result cache: the config (plus the record
stream) *is* the fingerprint.

Stages, in order (this order is part of the config contract — see
:class:`IngestConfig`):

1. **Filter** — drop unusable records (no runtime / width), optionally
   restrict to given SWF status codes.
2. **Order** — sort by ``(submit_time, job_id)`` with the remaining
   record fields as tie-breakers, so duplicate archive rows that share a
   submit second and a job id still normalize in one deterministic
   order regardless of how the archive file happened to order them.
3. **Window / subsample / cap** — keep a ``[start, end)`` second-window
   relative to the first submit, then a seeded ``subsample`` fraction
   (thinning preserves the arrival pattern's shape), then at most
   ``max_jobs`` of the surviving records.
4. **Quantize & rescale** — map submit seconds to integer ticks
   (``tick_seconds`` per tick) and optionally stretch/compress the
   arrival axis so the measured offered load hits ``target_load``.
5. **Work & elasticity** — the archive ran the job on ``p`` processors
   in ``run_time`` seconds; the job's demand in reference unit-ticks is
   therefore ``duration_ticks * speedup(p)``. ``p`` bounds the
   elasticity window (``max = p``, ``min = ceil(p * min_frac)``) and
   selects a fitted Amdahl serial fraction (wider jobs scale better —
   the standard observation the per-width interpolation encodes).
6. **Synthesis** — archives carry no deadlines or platform affinities.
   A seeded draw assigns each job time-critical or best-effort class,
   platform eligibility (an ``accel_fraction`` of jobs also run —
   faster — on the accelerator platform), and a slack-drawn deadline
   ``arrival + tau * ideal_duration`` exactly like the synthetic
   generator's classes, so imported and generated traces stress the
   same mechanisms.

Every stochastic draw (subsample keep/drop, class membership, platform
eligibility, deadline tightness) is **counter-based**: record index
``i``'s uniforms come from a Philox stream keyed on
``(seed, stream-tag, i // block)`` and read at offset ``i % block``, so
a draw is a pure function of ``(seed, index)`` — independent of how
many records are processed together. That is what lets the two-pass
streaming normalizer (:mod:`repro.workload.ingest.stream`) reproduce
this module's output **byte-identically** while holding only one chunk
of records in memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.job import Job
from repro.sim.platform import Platform
from repro.sim.speedup import AmdahlSpeedup
from repro.workload.ingest.records import RawJobRecord

__all__ = ["IngestConfig", "IngestStats", "normalize_records",
           "measured_load", "count_clamps", "TC_CLASS", "BE_CLASS"]

#: Class labels carried into ``Job.job_class`` by deadline synthesis.
TC_CLASS = "tc-trace"
BE_CLASS = "be-trace"

#: Floors applied in stage 5 (counted in :class:`IngestStats`, never silent).
DURATION_FLOOR_TICKS = 1e-9
WORK_FLOOR = 1.0

# Counter-based uniform streams: draws for item index ``i`` live in block
# ``i // _UNIFORM_BLOCK`` of a Philox generator keyed on
# ``(seed, stream-tag, block)``, so the value at an index never depends
# on batch boundaries — the property the streaming path relies on.
_UNIFORM_BLOCK = 2048
_SUBSAMPLE_STREAM = 1
_SYNTHESIS_STREAM = 2
_SYNTH_DRAWS = 4          # is_tc, on_accel, tc_tightness, be_tightness
_SEED_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class IngestConfig:
    """Everything that parameterizes record -> Job normalization.

    The config is frozen and fully structural, so it can be part of a
    persistent cache fingerprint; ``seed`` drives every stochastic
    synthesis step (class assignment, affinity draw, deadline
    tightness). Subsampling and the target-load rescale always draw
    from ``config.seed`` — not a per-trace override — so the selected
    record set and time axis are properties of the config.

    **Stage order contract.** Selection applies, in this order:
    usability/status *filter*, deterministic *ordering* (submit time,
    job id, then the remaining fields as tie-breakers), the second
    *window* relative to the first usable submit, the seeded
    *subsample* thinning, and finally the *max_jobs* cap. ``max_jobs``
    therefore caps the records that *survived* windowing and
    subsampling — it is a hard output-size bound, not a pre-thinning
    prefix — and ``window`` membership is decided before any record is
    thinned away.
    """

    # --- time ----------------------------------------------------------
    tick_seconds: float = 60.0          # archive seconds per simulator tick
    window: Optional[Tuple[float, float]] = None   # [start, end) seconds
    max_jobs: Optional[int] = None
    subsample: float = 1.0              # keep fraction in (0, 1]
    target_load: Optional[float] = None  # rescale arrivals to this load

    # --- elasticity / scaling -----------------------------------------
    max_parallelism_cap: int = 16       # clip archive widths to the model
    min_parallelism_frac: float = 0.25  # min = ceil(frac * max)
    sigma_range: Tuple[float, float] = (0.03, 0.30)  # Amdahl fit endpoints

    # --- class / deadline / affinity synthesis ------------------------
    time_critical_fraction: float = 0.4
    tc_tightness: Tuple[float, float] = (1.3, 2.5)
    be_tightness: Tuple[float, float] = (2.5, 5.0)
    tc_weight: float = 2.0
    be_weight: float = 1.0
    accel_fraction: float = 0.25        # share of jobs eligible for accel
    accel_affinity: float = 4.0         # their speed factor there
    accel_cpu_penalty: float = 0.5      # accel-friendly jobs' CPU factor

    # --- filtering -----------------------------------------------------
    include_statuses: Optional[Tuple[int, ...]] = None  # None = keep all
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if self.max_jobs is not None and self.max_jobs <= 0:
            raise ValueError("max_jobs must be positive")
        if self.window is not None:
            lo, hi = self.window
            if hi <= lo:
                raise ValueError("window must satisfy start < end")
        if self.target_load is not None and self.target_load <= 0:
            raise ValueError("target_load must be positive")
        if self.max_parallelism_cap < 1:
            raise ValueError("max_parallelism_cap must be >= 1")
        if not 0.0 < self.min_parallelism_frac <= 1.0:
            raise ValueError("min_parallelism_frac must be in (0, 1]")
        lo, hi = self.sigma_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError("sigma_range must satisfy 0 <= lo <= hi <= 1")
        if not 0.0 <= self.time_critical_fraction <= 1.0:
            raise ValueError("time_critical_fraction must be in [0, 1]")
        for name, rng_ in (("tc_tightness", self.tc_tightness),
                           ("be_tightness", self.be_tightness)):
            t_lo, t_hi = rng_
            if t_lo <= 1.0 or t_hi < t_lo:
                raise ValueError(f"{name} must satisfy 1 < lo <= hi")
        if not 0.0 <= self.accel_fraction <= 1.0:
            raise ValueError("accel_fraction must be in [0, 1]")
        if self.accel_affinity <= 0 or self.accel_cpu_penalty <= 0:
            raise ValueError("affinity factors must be positive")


@dataclass
class IngestStats:
    """What selection and clamping did to one record stream.

    Filled by :func:`normalize_records` (and, identically, by the
    streaming path) when passed as the ``stats`` argument — the
    previously silent drops and floors, made countable. ``n_records``
    counts every record offered to selection; the ``n_*_out`` fields
    partition the drops by stage; ``n_clamped_*`` count *selected*
    records whose duration or work hit the normalization floors
    (:data:`DURATION_FLOOR_TICKS`, :data:`WORK_FLOOR`).
    """

    n_records: int = 0
    n_unusable: int = 0
    n_status_filtered: int = 0
    n_windowed_out: int = 0
    n_subsampled_out: int = 0
    n_over_cap: int = 0
    n_selected: int = 0
    n_clamped_duration: int = 0
    n_clamped_work: int = 0

    def as_dict(self) -> dict:
        import dataclasses

        return dataclasses.asdict(self)


# --- counter-based uniform draws -----------------------------------------

def _uniform_block(seed: int, stream: int, block: int,
                   width: int) -> np.ndarray:
    """One ``(_UNIFORM_BLOCK, width)`` block of the counter-based stream."""
    ss = np.random.SeedSequence((int(seed) & _SEED_MASK, stream, block))
    gen = np.random.Generator(np.random.Philox(ss))
    return gen.random((_UNIFORM_BLOCK, width))


def _indexed_uniforms(seed: int, stream: int, start: int, n: int,
                      width: int) -> np.ndarray:
    """Uniform draws for item indices ``[start, start + n)``.

    Row ``j`` depends only on ``(seed, stream, start + j)``, never on
    ``start`` or ``n`` themselves — materialized (one call for the whole
    trace) and streamed (one call per chunk) paths read identical
    numbers.
    """
    out = np.empty((n, width))
    pos = 0
    block = start // _UNIFORM_BLOCK
    while pos < n:
        values = _uniform_block(seed, stream, block, width)
        lo = (start + pos) - block * _UNIFORM_BLOCK
        take = min(_UNIFORM_BLOCK - lo, n - pos)
        out[pos:pos + take] = values[lo:lo + take]
        pos += take
        block += 1
    return out


def _synthesis_arrays(seed: int, start: int, n: int, config: IngestConfig,
                      has_accel: bool):
    """Stage-6 draws for selected indices ``[start, start + n)``."""
    u = _indexed_uniforms(seed, _SYNTHESIS_STREAM, start, n, _SYNTH_DRAWS)
    is_tc = u[:, 0] < config.time_critical_fraction
    on_accel = (u[:, 1] < config.accel_fraction) if has_accel \
        else np.zeros(n, dtype=bool)
    tc_lo, tc_hi = config.tc_tightness
    be_lo, be_hi = config.be_tightness
    tc_tau = tc_lo + (tc_hi - tc_lo) * u[:, 2]
    be_tau = be_lo + (be_hi - be_lo) * u[:, 3]
    return is_tc, on_accel, tc_tau, be_tau


def _subsample_keep(seed: int, start: int, n: int,
                    keep_fraction: float) -> np.ndarray:
    """Seeded keep mask for windowed indices ``[start, start + n)``."""
    u = _indexed_uniforms(seed, _SUBSAMPLE_STREAM, start, n, 1)
    return u[:, 0] < keep_fraction


# --- deterministic record ordering ---------------------------------------

def _record_order(r: RawJobRecord):
    """Total order on records: submit time, job id, then every remaining
    field as tie-breaker, so duplicate archive rows with equal
    ``(submit_time, job_id)`` still sort deterministically regardless of
    input order."""
    return (r.submit_time, r.job_id, r.run_time, r.processors,
            r.requested_processors, r.requested_time, r.wait_time,
            r.status, r.user, r.group)


def _fitted_sigma(width: int, config: IngestConfig) -> float:
    """Amdahl serial fraction fitted from the archive's processor count.

    Jobs the archive ran wide demonstrably scale, so they get a small
    serial fraction; single-processor jobs get the large endpoint. The
    interpolation is logarithmic in width (doubling the width halves the
    remaining serial share), deterministic — no RNG.
    """
    lo, hi = config.sigma_range
    cap = max(2, config.max_parallelism_cap)
    frac = min(1.0, math.log2(max(1, width)) / math.log2(cap))
    return hi - (hi - lo) * frac


def _demand_model(record: RawJobRecord, config: IngestConfig):
    """Stage-5 quantities for one selected record.

    Returns ``(width, speedup model, duration ticks, work,
    duration_clamped, work_clamped)`` — the per-record demand math both
    the materialized and the streaming paths share verbatim.
    """
    width = min(max(1, record.width()), config.max_parallelism_cap)
    model = AmdahlSpeedup(round(_fitted_sigma(width, config), 6))
    raw_duration = record.run_time / config.tick_seconds
    duration = max(raw_duration, DURATION_FLOOR_TICKS)
    raw_work = duration * model.speedup(width)
    work = max(WORK_FLOOR, raw_work)
    return (width, model, duration, work,
            raw_duration < DURATION_FLOOR_TICKS, raw_work < WORK_FLOOR)


def _select(records: Sequence[RawJobRecord], config: IngestConfig,
            stats: Optional[IngestStats] = None) -> List[RawJobRecord]:
    """Stages 1-3: filter, order, window, subsample, cap (in that order).

    The subsample draw comes from ``config.seed`` — never the per-trace
    seed — so the *selected record set* (and with it the arrival axis
    and the target-load rescale) is a property of the scenario: paired
    per-seed trace variants always share identical arrivals and demands.
    Keep/drop for the record at windowed position ``w`` is a pure
    function of ``(config.seed, w)`` (counter-based draw), which the
    streaming path reproduces chunk by chunk.
    """
    usable: List[RawJobRecord] = []
    n_unusable = n_status = 0
    allowed = set(config.include_statuses) \
        if config.include_statuses is not None else None
    for r in records:
        if not r.usable():
            n_unusable += 1
            continue
        if allowed is not None and r.status not in allowed:
            n_status += 1
            continue
        usable.append(r)
    usable.sort(key=_record_order)
    if stats is not None:
        stats.n_records += n_unusable + n_status + len(usable)
        stats.n_unusable += n_unusable
        stats.n_status_filtered += n_status
    if not usable:
        return []
    t0 = usable[0].submit_time
    windowed = usable
    if config.window is not None:
        lo, hi = config.window
        windowed = [r for r in usable if lo <= r.submit_time - t0 < hi]
        if stats is not None:
            stats.n_windowed_out += len(usable) - len(windowed)
    kept = windowed
    if config.subsample < 1.0 and windowed:
        keep = _subsample_keep(config.seed, 0, len(windowed), config.subsample)
        kept = [r for r, k in zip(windowed, keep) if k]
        if stats is not None:
            stats.n_subsampled_out += len(windowed) - len(kept)
    selected = kept
    if config.max_jobs is not None:
        selected = kept[:config.max_jobs]
        if stats is not None:
            stats.n_over_cap += len(kept) - len(selected)
    if stats is not None:
        stats.n_selected += len(selected)
    return selected


def _job_demand(work: float, affinity: dict,
                platforms: Sequence[Platform], job_id="?") -> float:
    """One job's demand in capacity-weighted reference ticks."""
    total_cap = 0
    weighted = 0.0
    for p in platforms:
        if p.name in affinity:
            total_cap += p.capacity
            weighted += affinity[p.name] * p.base_speed * p.capacity
    if total_cap == 0:
        raise ValueError(
            f"job {job_id} runs on no provided platform "
            f"(affinity {sorted(affinity)})")
    return work / (weighted / total_cap)


def measured_load(jobs: Sequence[Job], platforms: Sequence[Platform]) -> float:
    """Offered load of a concrete job list on ``platforms``.

    Mirrors :func:`repro.workload.generator.offered_load` but measures a
    realized trace instead of a statistical mix: per-job demand is its
    work divided by the capacity-weighted mean unit service rate over
    the platforms it can run on, summed and divided by cluster capacity
    times the arrival span.
    """
    if not jobs:
        return 0.0
    capacity = sum(p.capacity for p in platforms)
    span = max(j.arrival_time for j in jobs) - min(j.arrival_time for j in jobs)
    span = max(1, span)
    demand = 0.0
    for job in jobs:
        demand += _job_demand(job.work, job.affinity, platforms, job.job_id)
    return demand / (capacity * span)


def count_clamps(records: Iterable[RawJobRecord],
                 config: IngestConfig) -> Tuple[int, int]:
    """How many usable records would hit the duration / work floors.

    A selection-free scan (no platforms needed) for ``trace stats``:
    reports the records whose ``run_time`` is so small that
    normalization at ``config.tick_seconds`` would silently floor their
    duration (``< 1e-9`` ticks) or their work (``< 1.0`` unit-ticks).
    """
    n_duration = n_work = 0
    for r in records:
        if not r.usable():
            continue
        _, _, _, _, clamped_d, clamped_w = _demand_model(r, config)
        n_duration += clamped_d
        n_work += clamped_w
    return n_duration, n_work


def normalize_records(
    records: Sequence[RawJobRecord],
    config: IngestConfig,
    platforms: Sequence[Platform],
    seed: Optional[int] = None,
    stats: Optional[IngestStats] = None,
) -> List[Job]:
    """Map raw archive records into simulator jobs (pure, seeded).

    ``seed`` overrides ``config.seed`` — the trace-backed scenarios use
    this to draw *paired* trace variants (same arrivals and demands,
    fresh class/deadline synthesis) from one archive, exactly as the
    synthetic generator draws paired traces from one workload config.

    ``platforms`` anchors deadline synthesis (best-case durations need
    base speeds) and, when ``config.target_load`` is set, the load
    rescaling. The first platform is the primary (CPU-like) pool every
    job may run on; the second, if present, is the accelerator pool an
    ``accel_fraction`` of jobs also run on.

    ``stats``, when given, is filled with the selection / clamp counts
    (:class:`IngestStats`) that the pipeline previously applied
    silently. For archives too large to materialize, use
    :func:`repro.workload.ingest.stream.stream_normalize`, which emits
    the byte-identical job stream in bounded memory.
    """
    if not platforms:
        raise ValueError("need at least one platform")
    effective_seed = config.seed if seed is None else seed

    selected = _select(records, config, stats)
    if not selected:
        return []

    primary = platforms[0]
    accel = platforms[1] if len(platforms) > 1 else None
    base_speeds = {p.name: p.base_speed for p in platforms}

    t0 = selected[0].submit_time
    arrivals_s = np.array([r.submit_time - t0 for r in selected])

    # Stage 5: work / elasticity / scaling law, before any load math —
    # the demand numbers are what the load measurement needs.
    widths: List[int] = []
    models: List[AmdahlSpeedup] = []
    works: List[float] = []
    for r in selected:
        width, model, _, work, clamped_d, clamped_w = _demand_model(r, config)
        widths.append(width)
        models.append(model)
        works.append(work)
        if stats is not None:
            stats.n_clamped_duration += clamped_d
            stats.n_clamped_work += clamped_w

    n = len(selected)
    has_accel = accel is not None
    is_tc, on_accel, tc_tau, be_tau = _synthesis_arrays(
        effective_seed, 0, n, config, has_accel)

    # Stage 4b: arrival quantization, optionally rescaled to target load.
    def ticks_for(scale: float) -> List[int]:
        return [int(round(a * scale / config.tick_seconds))
                for a in arrivals_s]

    scale = 1.0
    if config.target_load is not None:
        # The rescale factor is a property of the *scenario* (it sets the
        # simulated time axis), so the probe always draws its synthesis
        # from ``config.seed``: paired per-seed trace variants then share
        # identical arrival ticks, differing only in class/deadline draws.
        probe_draws = _synthesis_arrays(config.seed, 0, n, config, has_accel)
        probe = _build_jobs(selected, ticks_for(1.0), widths, models, works,
                            *probe_draws,
                            primary, accel, base_speeds, config)
        load_now = measured_load(probe, platforms)
        if load_now > 0:
            scale = load_now / config.target_load
    jobs = _build_jobs(selected, ticks_for(scale), widths, models, works,
                       is_tc, on_accel, tc_tau, be_tau,
                       primary, accel, base_speeds, config)
    return jobs


def _affinity_for(on_accel, primary: Platform, accel: Optional[Platform],
                  config: IngestConfig) -> dict:
    """Stage-6 platform-eligibility map for one job (shared by the job
    builder and the streaming load probe — one copy of this logic)."""
    if accel is not None and on_accel:
        return {primary.name: config.accel_cpu_penalty,
                accel.name: config.accel_affinity}
    return {primary.name: 1.0}


def _emit_job(arrival_tick, width, model, work, is_tc, on_accel,
              tc_tau, be_tau, primary: Platform, accel: Optional[Platform],
              base_speeds, config: IngestConfig) -> Job:
    """Stage-6 job construction for one selected record.

    Shared verbatim by the materialized and streaming paths so the two
    produce bit-identical floats.
    """
    k_max = width
    k_min = max(1, int(math.ceil(k_max * config.min_parallelism_frac)))
    affinity = _affinity_for(on_accel, primary, accel, config)
    best_rate = max(affinity[p] * base_speeds[p] * model.speedup(k_max)
                    for p in affinity)
    ideal = work / best_rate
    tau = float(tc_tau if is_tc else be_tau)
    arrival = max(0, int(arrival_tick))
    return Job(
        arrival_time=arrival,
        work=float(work),
        deadline=arrival + max(tau * ideal, 1.0 + 1e-6),
        min_parallelism=k_min,
        max_parallelism=k_max,
        speedup_model=model,
        affinity=affinity,
        job_class=TC_CLASS if is_tc else BE_CLASS,
        weight=config.tc_weight if is_tc else config.be_weight,
    )


def _build_jobs(selected, arrival_ticks, widths, models, works,
                is_tc, on_accel, tc_tau, be_tau,
                primary: Platform, accel: Optional[Platform],
                base_speeds, config: IngestConfig) -> List[Job]:
    jobs = [
        _emit_job(arrival_ticks[i], widths[i], models[i], works[i],
                  is_tc[i], on_accel[i], tc_tau[i], be_tau[i],
                  primary, accel, base_speeds, config)
        for i in range(len(selected))
    ]
    jobs.sort(key=lambda j: j.arrival_time)
    return jobs
