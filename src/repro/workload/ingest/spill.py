"""External merge-sort spill for out-of-order record streams.

:func:`~repro.workload.ingest.stream.stream_normalize` requires its
record source to be pre-sorted by the normalizer's deterministic record
order — true of archive logs, false of, say, a concatenation of per-user
dumps. The materialized path handles those by sorting the whole list in
memory, which is exactly what archive-scale streaming must avoid.

:class:`SpilledSortedRecords` bridges the gap with the classic external
merge sort: the source is streamed **once**, buffered ``chunk_size``
records at a time, each chunk sorted in memory by
:func:`~.normalize._record_order` and spilled to a temporary
``.jsonl.gz`` run file; every subsequent iteration k-way-merges the run
files with :func:`heapq.merge`. Held memory is ``O(chunk_size + runs)``,
and both normalization passes re-read the compact spilled runs instead
of re-parsing the archive.

The merged stream is *exactly* ``sorted(records, key=_record_order)``:
the run files preserve JSON number types (ints stay ints, floats
round-trip via ``repr``), the sort key covers every field, and a stable
merge of stably-sorted runs is a stable sort — so feeding the spill
through ``stream_normalize`` is byte-identical to materializing and
sorting the same records.
"""

from __future__ import annotations

import gzip
import heapq
import json
import os
import shutil
import tempfile
import weakref
from typing import Iterable, Iterator, List, Optional

from repro.workload.ingest.normalize import _record_order
from repro.workload.ingest.records import RawJobRecord

__all__ = ["SpilledSortedRecords", "spill_sorted_records"]

#: Records buffered (and sorted in memory) per spilled run file.
DEFAULT_SPILL_CHUNK = 65536

#: Serialization order of RawJobRecord fields in a run-file line.
_FIELDS = ("job_id", "submit_time", "wait_time", "run_time", "processors",
           "requested_time", "requested_processors", "status", "user",
           "group")


def _record_to_line(r: RawJobRecord) -> str:
    """One compact JSON array per record; number types survive the trip."""
    return json.dumps([getattr(r, f) for f in _FIELDS],
                      separators=(",", ":"))


def _record_from_line(line: str) -> RawJobRecord:
    return RawJobRecord(*json.loads(line))


def _read_run(path: str) -> Iterator[RawJobRecord]:
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                yield _record_from_line(line)


class SpilledSortedRecords:
    """A re-streamable, sorted view of an arbitrarily-ordered source.

    Callable like any ``RecordFactory``: each call returns an iterator
    over the source records in :func:`~.normalize._record_order`. The
    source is consumed exactly once (on the first call); run files live
    in a private temporary directory removed when this object is
    garbage-collected, ``close()``d, or used as a context manager.

    Parameters
    ----------
    records_factory:
        Zero-argument callable yielding the raw records (consumed once).
    chunk_size:
        Records sorted in memory per run file.
    dir:
        Parent directory for the run files (default: system tempdir).
    """

    def __init__(self, records_factory, chunk_size: int = DEFAULT_SPILL_CHUNK,
                 dir: Optional[str] = None) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._factory = records_factory
        self._chunk_size = chunk_size
        self._parent = dir
        self._tmpdir: Optional[str] = None
        self._runs: List[str] = []
        self._spilled = False
        self._finalizer: Optional[weakref.finalize] = None

    # --- spill ----------------------------------------------------------------
    def _spill(self) -> None:
        self._tmpdir = tempfile.mkdtemp(prefix="repro-spill-",
                                        dir=self._parent)
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, self._tmpdir, ignore_errors=True)
        chunk: List[RawJobRecord] = []
        try:
            for r in self._factory():
                chunk.append(r)
                if len(chunk) >= self._chunk_size:
                    self._write_run(chunk)
                    chunk = []
            if chunk:
                self._write_run(chunk)
        except BaseException:
            self.close()
            raise
        self._spilled = True
        self._factory = None   # the source is never re-read; drop the ref

    def _write_run(self, chunk: List[RawJobRecord]) -> None:
        chunk.sort(key=_record_order)
        path = os.path.join(self._tmpdir, f"run-{len(self._runs):06d}.jsonl.gz")
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            for r in chunk:
                fh.write(_record_to_line(r))
                fh.write("\n")
        self._runs.append(path)

    # --- record-factory protocol ---------------------------------------------
    def __call__(self) -> Iterator[RawJobRecord]:
        if not self._spilled:
            self._spill()
        if not self._runs:
            return iter(())
        if len(self._runs) == 1:
            return _read_run(self._runs[0])
        return heapq.merge(*(_read_run(p) for p in self._runs),
                           key=_record_order)

    @property
    def num_runs(self) -> int:
        """Run files spilled so far (0 before first iteration)."""
        return len(self._runs)

    # --- cleanup --------------------------------------------------------------
    def close(self) -> None:
        """Remove the spilled run files (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()
        self._runs = []

    def __enter__(self) -> "SpilledSortedRecords":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def spill_sorted_records(records: Iterable[RawJobRecord],
                         chunk_size: int = DEFAULT_SPILL_CHUNK,
                         dir: Optional[str] = None) -> SpilledSortedRecords:
    """Spill an already-constructed iterable (convenience wrapper).

    The iterable is consumed on the returned factory's first call, so a
    one-shot iterator is fine — but then the factory is the only
    re-streamable handle on the data.
    """
    return SpilledSortedRecords(lambda: records, chunk_size=chunk_size,
                                dir=dir)
