"""Archive presets: one-flag ingestion of well-known public traces.

A preset is a resolved-defaults table (the ``BLANKET_PARAMS`` idiom):
naming one resolves *every* :class:`IngestConfig` field plus the archive
format, columnar spec, and simulator platform capacities — and any
individual field can still be overridden. Resolution precedence, lowest
to highest:

1. :class:`IngestConfig` built-in defaults,
2. the preset's field table,
3. programmatic field overrides (``fields=``),
4. explicit CLI flags (``overrides=``).

so ``repro.cli trace import --preset kit-fh2 log.swf.gz`` is a complete
ingestion config, and ``--preset kit-fh2 --tick-seconds 30`` changes
exactly one field.

The module also carries the two archive-calibration fits that presets
make reachable:

* :func:`fit_arrival_process` — fit a
  :class:`~repro.workload.arrivals.DiurnalArrivals` /
  :class:`~repro.workload.arrivals.BurstyArrivals` /
  :class:`~repro.workload.arrivals.PoissonArrivals` model to the
  archive's arrival series (first-harmonic least squares at the diurnal
  period when the trace spans one; two-state split by the index of
  dispersion otherwise);
* :func:`fit_family_sigmas` — per-family Amdahl serial fractions from
  multi-width resubmissions (same user + same requested runtime run at
  different widths), via least squares on ``t(p) = C(sigma + (1-sigma)/p)``.

Both fits are deterministic closed-form reductions — no RNG — so a
preset import is as reproducible as a plain one.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.workload.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.workload.ingest.normalize import IngestConfig
from repro.workload.ingest.records import RawJobRecord

__all__ = [
    "ArchivePreset",
    "ARCHIVE_PRESETS",
    "preset_names",
    "get_preset",
    "resolve_ingest",
    "fit_arrival_process",
    "fit_family_sigmas",
    "fitted_sigma_range",
]

_INGEST_FIELDS = {f.name for f in dataclasses.fields(IngestConfig)}

#: Seconds per day — the period candidate for the diurnal fit.
_DAY_SECONDS = 86400.0

#: Index of dispersion (var/mean of per-bin counts) above which a
#: Poisson model is rejected in favor of the two-state bursty fit.
_DISPERSION_CUTOFF = 2.0

#: Minimum relative first-harmonic amplitude for the diurnal fit to win.
_MIN_AMPLITUDE = 0.15


@dataclass(frozen=True)
class ArchivePreset:
    """Everything one ``--preset`` flag resolves for a public archive.

    ``ingest`` holds only the fields that *differ* from the
    :class:`IngestConfig` defaults; :func:`resolve_ingest` merges them.
    ``spec`` names the columnar spec for ``format="columnar"`` presets
    (``"google"``/``"alibaba"``, resolved by the CLI).
    """

    name: str
    description: str
    format: str                      # "swf" | "columnar"
    ingest: Tuple[Tuple[str, object], ...] = ()
    spec: Optional[str] = None
    cpu_capacity: int = 24
    gpu_capacity: int = 8
    url: str = ""

    def __post_init__(self) -> None:
        if self.format not in ("swf", "columnar"):
            raise ValueError(f"preset format must be swf|columnar, "
                             f"got {self.format!r}")
        unknown = sorted(k for k, _ in self.ingest if k not in _INGEST_FIELDS)
        if unknown:
            raise ValueError(
                f"preset {self.name!r} sets unknown IngestConfig "
                f"fields {unknown}")

    def ingest_defaults(self) -> Dict[str, object]:
        return dict(self.ingest)


ARCHIVE_PRESETS: Dict[str, ArchivePreset] = {
    preset.name: preset
    for preset in (
        ArchivePreset(
            name="kit-fh2",
            description=("KIT ForHLR II (Parallel Workloads Archive SWF): "
                         "CPU-only HPC cluster, completed jobs, wide rigid "
                         "allocations clipped to the elastic model"),
            format="swf",
            ingest=(
                ("tick_seconds", 120.0),
                ("max_parallelism_cap", 16),
                ("min_parallelism_frac", 0.5),
                ("time_critical_fraction", 0.3),
                ("accel_fraction", 0.0),
                ("include_statuses", (1,)),
            ),
            cpu_capacity=48,
            gpu_capacity=0,
            url="https://www.cs.huji.ac.il/labs/parallel/workload/l_kit_fh2/",
        ),
        ArchivePreset(
            name="sdsc-sp2",
            description=("SDSC SP2 (Parallel Workloads Archive SWF): "
                         "classic 128-node batch log with long service "
                         "times; coarse ticks keep horizons tractable"),
            format="swf",
            ingest=(
                ("tick_seconds", 300.0),
                ("max_parallelism_cap", 8),
                ("min_parallelism_frac", 0.25),
                ("time_critical_fraction", 0.25),
                ("accel_fraction", 0.0),
                ("include_statuses", (1,)),
            ),
            cpu_capacity=32,
            gpu_capacity=0,
            url="https://www.cs.huji.ac.il/labs/parallel/workload/l_sdsc_sp2/",
        ),
        ArchivePreset(
            name="google-2019",
            description=("Google 2019 cluster sample (v3 trace export, "
                         "columnar CSV): mixed services + batch with an "
                         "accelerator-eligible share"),
            format="columnar",
            spec="google",
            ingest=(
                ("tick_seconds", 300.0),
                ("max_parallelism_cap", 16),
                ("time_critical_fraction", 0.5),
                ("tc_tightness", (1.2, 2.0)),
                ("accel_fraction", 0.35),
                ("include_statuses", (1,)),
            ),
            cpu_capacity=48,
            gpu_capacity=16,
            url="https://github.com/google/cluster-data",
        ),
    )
}


def preset_names() -> List[str]:
    """Sorted preset names (the ``--preset`` choices)."""
    return sorted(ARCHIVE_PRESETS)


def get_preset(name: str) -> ArchivePreset:
    if name not in ARCHIVE_PRESETS:
        raise KeyError(
            f"unknown archive preset {name!r}; choose from {preset_names()}")
    return ARCHIVE_PRESETS[name]


def resolve_ingest(
    preset: Optional[str] = None,
    fields: Optional[Mapping[str, object]] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> IngestConfig:
    """Resolve a full :class:`IngestConfig` through the precedence chain.

    ``preset`` (lowest of the three explicit layers) names an
    :data:`ARCHIVE_PRESETS` entry or is ``None`` for plain defaults;
    ``fields`` are programmatic per-field defaults; ``overrides`` are
    the caller's explicit choices (CLI flags). Unknown field names are a
    :class:`ValueError`, not a silent drop.
    """
    merged: Dict[str, object] = {}
    if preset is not None:
        merged.update(get_preset(preset).ingest_defaults())
    for layer_name, layer in (("fields", fields), ("overrides", overrides)):
        if not layer:
            continue
        unknown = sorted(k for k in layer if k not in _INGEST_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown IngestConfig fields in {layer_name}: {unknown}")
        merged.update(layer)
    return IngestConfig(**merged)


# --- arrival-series fitting -----------------------------------------------

def _bin_counts(arrival_seconds: Sequence[float],
                tick_seconds: float) -> np.ndarray:
    times = np.asarray(sorted(float(t) for t in arrival_seconds))
    times = times - times[0]
    ticks = np.floor(times / tick_seconds).astype(int)
    return np.bincount(ticks, minlength=int(ticks[-1]) + 1).astype(float)


def fit_arrival_process(arrival_seconds: Sequence[float],
                        tick_seconds: float) -> ArrivalProcess:
    """Fit an arrival-process model to an archive's submit-time series.

    Bins arrivals into simulator ticks, then picks the simplest model
    the series supports:

    * spans >= 2 diurnal periods with a first-harmonic relative
      amplitude >= 0.15 -> :class:`DiurnalArrivals` (least-squares
      sin/cos fit at the one-day period);
    * over-dispersed (index of dispersion > 2) -> 2-state
      :class:`BurstyArrivals` (above/below-median rate split, switch
      probability from the mean run length of the state sequence);
    * otherwise -> :class:`PoissonArrivals` at the mean rate.

    Deterministic: a pure reduction of the series, no RNG.
    """
    if len(arrival_seconds) < 2:
        raise ValueError("need at least two arrivals to fit a process")
    if tick_seconds <= 0:
        raise ValueError("tick_seconds must be positive")
    counts = _bin_counts(arrival_seconds, tick_seconds)
    mean = float(counts.mean())
    if mean <= 0:
        raise ValueError("arrival series has zero mean rate")

    period_ticks = _DAY_SECONDS / tick_seconds
    if len(counts) >= 2 * period_ticks and period_ticks >= 4:
        t = np.arange(len(counts), dtype=float)
        omega = 2.0 * np.pi * t / period_ticks
        basis = np.column_stack([np.ones_like(t), np.sin(omega),
                                 np.cos(omega)])
        coef, *_ = np.linalg.lstsq(basis, counts, rcond=None)
        base, a_sin, a_cos = (float(c) for c in coef)
        amplitude = math.hypot(a_sin, a_cos) / max(base, 1e-12)
        if amplitude >= _MIN_AMPLITUDE and base > 0:
            # sin(x + 2*pi*phase) expansion matches DiurnalArrivals'
            # rate law; atan2 recovers the phase of the fitted harmonic.
            phase = math.atan2(a_cos, a_sin) / (2.0 * np.pi)
            return DiurnalArrivals(
                base_rate=round(base, 6),
                amplitude=round(min(amplitude, 0.999999), 6),
                period=int(round(period_ticks)),
                phase=round(phase % 1.0, 6))

    dispersion = float(counts.var() / mean)
    if dispersion > _DISPERSION_CUTOFF:
        median = float(np.median(counts))
        high = counts > median
        rate_high = float(counts[high].mean()) if high.any() else mean
        rate_low = float(counts[~high].mean()) if (~high).any() else mean
        if rate_low <= 0:
            rate_low = min(mean, rate_high) * 0.1
        if rate_high > rate_low:
            # Mean run length of the above/below-median state sequence
            # estimates the MMPP-2 sojourn time; its inverse is the
            # per-tick switch probability.
            flips = int(np.count_nonzero(high[1:] != high[:-1]))
            mean_run = len(counts) / max(flips + 1, 1)
            switch = min(max(1.0 / max(mean_run, 1.0), 1e-6), 1.0)
            return BurstyArrivals(rate_low=round(rate_low, 6),
                                  rate_high=round(rate_high, 6),
                                  switch_prob=round(switch, 6))
    return PoissonArrivals(rate=round(mean, 6))


# --- per-family Amdahl sigma fitting --------------------------------------

def fit_family_sigmas(records: Sequence[RawJobRecord],
                      min_widths: int = 2) -> Dict[str, float]:
    """Amdahl serial fractions from multi-width resubmission families.

    A *family* is (user, requested runtime): the same user re-running
    the same nominal job at different widths — the only case where an
    archive directly exposes a scaling curve. For each family with
    ``min_widths`` distinct widths, least-squares fit
    ``t(p) = a + b/p`` over (width, mean runtime) pairs; then
    ``sigma = a / (a + b)``, clipped to [0, 1]. Families whose runtimes
    do not decrease with width fit ``sigma ~ 1`` — honestly reported as
    unscalable rather than dropped.
    """
    groups: Dict[Tuple[int, float], Dict[int, List[float]]] = {}
    for rec in records:
        if not rec.usable() or rec.user < 0 or rec.requested_time <= 0:
            continue
        fam = (rec.user, float(rec.requested_time))
        groups.setdefault(fam, {}).setdefault(rec.width(), []).append(
            float(rec.run_time))
    sigmas: Dict[str, float] = {}
    for (user, req), by_width in sorted(groups.items()):
        if len(by_width) < min_widths:
            continue
        widths = np.array(sorted(by_width), dtype=float)
        runtimes = np.array([float(np.mean(by_width[int(w)]))
                             for w in widths])
        basis = np.column_stack([np.ones_like(widths), 1.0 / widths])
        (a, b), *_ = np.linalg.lstsq(basis, runtimes, rcond=None)
        denom = float(a + b)
        if denom <= 0:
            continue
        sigma = min(max(float(a) / denom, 0.0), 1.0)
        sigmas[f"u{user}/rt{req:g}"] = round(sigma, 6)
    return sigmas


def fitted_sigma_range(
    records: Sequence[RawJobRecord],
    default: Tuple[float, float] = (0.03, 0.30),
) -> Tuple[float, float]:
    """Narrow the ingest ``sigma_range`` to the archive's fitted sigmas.

    The 10th..90th percentile of the per-family fits, falling back to
    ``default`` when the archive exposes no multi-width families.
    """
    sigmas = sorted(fit_family_sigmas(records).values())
    if not sigmas:
        return default
    lo = float(np.percentile(sigmas, 10.0))
    hi = float(np.percentile(sigmas, 90.0))
    if hi <= lo:
        hi = min(lo + 1e-6, 1.0)
    return (round(lo, 6), round(hi, 6))
