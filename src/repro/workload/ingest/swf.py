"""Standard Workload Format (SWF) parser.

SWF is the Parallel Workloads Archive's interchange format: ``;``-prefixed
header comments followed by one job per line with 18 whitespace-separated
fields (Feitelson et al.). This parser is

* **streaming** — lines are consumed one at a time, so multi-gigabyte
  archive logs never need to fit in memory;
* **gzip-aware** — ``*.gz`` paths are decompressed transparently, which
  is how the archive distributes its logs;
* **tolerant** — the archives use ``-1`` as an "unknown" sentinel and
  some logs carry fewer than 18 fields or stray malformed lines; both
  are preserved/skipped rather than fatal (skips are counted in
  :class:`~repro.workload.ingest.records.TraceMeta`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.workload.ingest.records import RawJobRecord, TraceMeta, open_text

__all__ = ["parse_swf", "parse_swf_lines", "read_swf"]

# SWF field indices (0-based), per the format definition.
_JOB_ID = 0
_SUBMIT = 1
_WAIT = 2
_RUN = 3
_ALLOC_PROCS = 4
_REQ_TIME = 8
_REQ_PROCS = 7
_STATUS = 10
_USER = 11
_GROUP = 12
_MIN_FIELDS = 5   # need at least job id .. allocated processors


def _field_f(fields: List[str], idx: int) -> float:
    if idx >= len(fields):
        return -1.0
    try:
        return float(fields[idx])
    except ValueError:
        return -1.0


def _field_i(fields: List[str], idx: int) -> int:
    value = _field_f(fields, idx)
    return int(value) if value == value else -1  # NaN-safe


def _header_i(head: dict, key: str) -> int:
    """Header value as int, tolerating annotations ('128 (two parts)')."""
    raw = head.get(key, "").split()
    try:
        return int(float(raw[0])) if raw else -1
    except ValueError:
        return -1


def _record_from_fields(fields: List[str]) -> Optional[RawJobRecord]:
    """One data line's fields -> a record, or None if unparsable."""
    if len(fields) < _MIN_FIELDS:
        return None
    try:
        job_id = int(float(fields[_JOB_ID]))
    except ValueError:
        return None
    return RawJobRecord(
        job_id=job_id,
        submit_time=_field_f(fields, _SUBMIT),
        wait_time=_field_f(fields, _WAIT),
        run_time=_field_f(fields, _RUN),
        processors=_field_i(fields, _ALLOC_PROCS),
        requested_time=_field_f(fields, _REQ_TIME),
        requested_processors=_field_i(fields, _REQ_PROCS),
        status=_field_i(fields, _STATUS),
        user=_field_i(fields, _USER),
        group=_field_i(fields, _GROUP),
    )


def parse_swf_lines(lines: Iterable[str], source: str = "<lines>"
                    ) -> Tuple[TraceMeta, List[RawJobRecord]]:
    """Parse an iterable of SWF lines into (meta, records).

    Header comments (``; Key: Value``) are collected into the meta;
    malformed data lines are counted as skipped, not raised.
    """
    header: List[Tuple[str, str]] = []
    records: List[RawJobRecord] = []
    skipped = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        if line.startswith(";"):
            body = line.lstrip(";").strip()
            if ":" in body:
                key, _, value = body.partition(":")
                header.append((key.strip(), value.strip()))
            continue
        record = _record_from_fields(line.split())
        if record is None:
            skipped += 1
            continue
        records.append(record)

    head = dict(header)
    meta = TraceMeta(
        source=source,
        format="swf",
        max_procs=_header_i(head, "MaxProcs"),
        unix_start_time=_header_i(head, "UnixStartTime"),
        n_records=len(records),
        n_skipped=skipped,
        n_unusable=sum(1 for r in records if not r.usable()),
        header=tuple(header),
    )
    return meta, records


def parse_swf(path: str) -> Tuple[TraceMeta, List[RawJobRecord]]:
    """Parse an SWF file (plain or ``.gz``) into (meta, records)."""
    with open_text(path) as fh:
        return parse_swf_lines(fh, source=str(path))


def read_swf(path: str) -> Iterator[RawJobRecord]:
    """Stream records from an SWF file without materializing the list.

    Header and malformed lines are skipped; use :func:`parse_swf` when
    the meta block or the skip count is needed.
    """
    with open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith(";"):
                continue
            record = _record_from_fields(line.split())
            if record is not None:
                yield record
