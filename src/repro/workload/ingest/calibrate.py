"""Calibration: fit a synthetic :class:`WorkloadConfig` to an imported trace.

An archive is finite; the synthetic generator is not. Fitting the
generator's knobs (class mix, lognormal work parameters, elasticity
windows, scaling law, affinities, deadline tightness) to a normalized
trace lets every existing consumer of :class:`WorkloadConfig` — RL
training environments, load sweeps, the scenario constructors —
extrapolate *beyond* the archive's length while matching its first-order
statistics. The trace-backed scenarios use exactly this for their
``train_env``: evaluation replays the real trace, training samples from
its calibrated surrogate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.job import Job
from repro.sim.speedup import AmdahlSpeedup
from repro.workload.classes import JobClass
from repro.workload.generator import WorkloadConfig

__all__ = ["calibrate_workload", "fitted_arrival_rate"]


def _fit_class(name: str, jobs: Sequence[Job], total: int) -> JobClass:
    works = np.array([j.work for j in jobs], dtype=float)
    log_w = np.log(np.maximum(works, 1e-9))
    mu = float(np.mean(log_w))
    sigma = float(np.std(log_w))
    sigma = max(sigma, 0.05)            # degenerate fits still sample

    k_min = min(j.min_parallelism for j in jobs)
    k_max = max(j.max_parallelism for j in jobs)

    sigmas = [j.speedup_model.sigma for j in jobs
              if isinstance(j.speedup_model, AmdahlSpeedup)]
    serial = float(np.median(sigmas)) if sigmas else 0.1

    # Empirical tightness: tau = (deadline - arrival) / ideal duration,
    # where ideal uses the job's own best platform at max parallelism.
    taus: List[float] = []
    for j in jobs:
        best = max(j.affinity.values()) * j.speedup_model.speedup(
            j.max_parallelism)
        ideal = j.work / best
        if ideal > 0:
            taus.append((j.deadline - j.arrival_time) / ideal)
    taus_arr = np.array(taus) if taus else np.array([2.0])
    t_lo = float(max(1.01, np.quantile(taus_arr, 0.1)))
    t_hi = float(max(t_lo, np.quantile(taus_arr, 0.9)))

    # Most common affinity signature within the class.
    signatures: Dict[Tuple[Tuple[str, float], ...], int] = defaultdict(int)
    for j in jobs:
        signatures[tuple(sorted(j.affinity.items()))] += 1
    affinity = dict(max(signatures.items(), key=lambda kv: (kv[1], kv[0]))[0])

    weights = [j.weight for j in jobs]
    return JobClass(
        name=name,
        mix_weight=len(jobs) / total,
        work_lognorm=(round(mu, 6), round(sigma, 6)),
        parallelism_range=(k_min, k_max),
        serial_fraction=round(serial, 6),
        affinity=affinity,
        tightness_range=(round(t_lo, 6), round(t_hi, 6)),
        weight=float(np.median(weights)),
        rigid=(k_min == k_max),
    )


def calibrate_workload(jobs: Sequence[Job], horizon: int = 0) -> WorkloadConfig:
    """Fit a :class:`WorkloadConfig` to a normalized trace.

    One fitted :class:`~repro.workload.classes.JobClass` per distinct
    ``job_class`` label in the trace, with the empirical mix as class
    weights. ``horizon`` defaults to the trace's arrival span.
    """
    if not jobs:
        raise ValueError("cannot calibrate an empty trace")
    by_class: Dict[str, List[Job]] = defaultdict(list)
    for j in jobs:
        by_class[j.job_class].append(j)
    classes = [_fit_class(name, members, len(jobs))
               for name, members in sorted(by_class.items())]
    if horizon <= 0:
        horizon = max(j.arrival_time for j in jobs) + 1
    return WorkloadConfig(classes=classes, horizon=horizon)


def fitted_arrival_rate(jobs: Sequence[Job]) -> float:
    """Mean arrivals per tick over the trace's span (Poisson fit)."""
    if not jobs:
        raise ValueError("cannot fit an empty trace")
    span = max(j.arrival_time for j in jobs) - min(
        j.arrival_time for j in jobs)
    return len(jobs) / max(1, span)
