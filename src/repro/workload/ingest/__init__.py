"""Real-trace ingestion: archive logs -> simulator jobs.

The subsystem turns public cluster archives into first-class workloads:

* :mod:`~repro.workload.ingest.swf` — Standard Workload Format parser
  (Parallel Workloads Archive logs, gzip-aware, sentinel-tolerant);
* :mod:`~repro.workload.ingest.columnar` — configurable columnar-CSV
  adapter for Google/Alibaba-style cluster tables;
* :mod:`~repro.workload.ingest.normalize` — the seeded, deterministic
  mapping from raw records to :class:`~repro.sim.job.Job` (work units,
  fitted speedup, elasticity window, platform eligibility, deadline &
  class synthesis, load rescaling);
* :mod:`~repro.workload.ingest.calibrate` — fit a
  :class:`~repro.workload.generator.WorkloadConfig` to an imported
  trace so the synthetic generator extrapolates beyond the archive.

Two hermetic fixtures are bundled (``fixtures/``) so tests, benchmarks,
and CI exercise the full pipeline without network access; see
:func:`swf_fixture_path` / :func:`columnar_fixture_path`.
"""

from __future__ import annotations

import os

from repro.workload.ingest.calibrate import calibrate_workload, fitted_arrival_rate
from repro.workload.ingest.columnar import (
    ALIBABA_LIKE_SPEC,
    GOOGLE_LIKE_SPEC,
    ColumnarSpec,
    parse_columnar,
    parse_columnar_lines,
    read_columnar,
)
from repro.workload.ingest.normalize import (
    BE_CLASS,
    TC_CLASS,
    IngestConfig,
    IngestStats,
    count_clamps,
    measured_load,
    normalize_records,
)
from repro.workload.ingest.records import RawJobRecord, TraceMeta, record_stats
from repro.workload.ingest.spill import SpilledSortedRecords, spill_sorted_records
from repro.workload.ingest.stream import (
    stream_normalize,
    stream_normalize_columnar,
    stream_normalize_swf,
)
from repro.workload.ingest.swf import parse_swf, parse_swf_lines, read_swf

__all__ = [
    "RawJobRecord", "TraceMeta", "record_stats",
    "parse_swf", "parse_swf_lines", "read_swf",
    "ColumnarSpec", "parse_columnar", "parse_columnar_lines", "read_columnar",
    "GOOGLE_LIKE_SPEC", "ALIBABA_LIKE_SPEC",
    "IngestConfig", "IngestStats", "normalize_records", "measured_load",
    "count_clamps",
    "stream_normalize", "stream_normalize_swf", "stream_normalize_columnar",
    "SpilledSortedRecords", "spill_sorted_records",
    "TC_CLASS", "BE_CLASS",
    "calibrate_workload", "fitted_arrival_rate",
    "swf_fixture_path", "columnar_fixture_path",
]

_FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def swf_fixture_path() -> str:
    """Path of the bundled hermetic SWF fixture trace."""
    return os.path.join(_FIXTURES, "sample.swf")


def columnar_fixture_path() -> str:
    """Path of the bundled hermetic gzipped columnar-CSV fixture trace."""
    return os.path.join(_FIXTURES, "sample_jobs.csv.gz")
