"""Synthetic trace generation and offered-load accounting.

``offered_load`` gives the load dial every sweep experiment uses: the
expected fraction of cluster capacity the trace demands per tick,
approximating each class's per-unit service rate by the capacity-weighted
mean over its runnable platforms. It is a *control knob*, not an exact
queueing quantity — what matters for the experiments is that it is
monotone in the arrival rate and comparable across schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.job import Job
from repro.sim.platform import Platform
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.classes import JobClass, default_job_classes

__all__ = ["WorkloadConfig", "generate_trace", "offered_load", "arrival_rate_for_load"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Everything needed to sample a reproducible trace.

    ``tightness_scale`` multiplies every job's deadline tightness (E4's
    sweep variable); ``horizon`` is the arrival window in ticks.
    """

    classes: Sequence[JobClass]
    horizon: int = 200
    tightness_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("need at least one job class")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.tightness_scale <= 0:
            raise ValueError("tightness_scale must be positive")

    def mix_probs(self) -> np.ndarray:
        w = np.array([c.mix_weight for c in self.classes], dtype=float)
        return w / w.sum()


def _class_unit_rate(cls: JobClass, platforms: Sequence[Platform]) -> float:
    """Capacity-weighted mean per-unit service rate for a class."""
    total_cap = 0
    weighted = 0.0
    for p in platforms:
        if p.name in cls.affinity:
            total_cap += p.capacity
            weighted += cls.affinity[p.name] * p.base_speed * p.capacity
    if total_cap == 0:
        raise ValueError(f"class {cls.name!r} runs on no provided platform")
    return weighted / total_cap


def offered_load(
    arrival_rate: float, config: WorkloadConfig, platforms: Sequence[Platform]
) -> float:
    """Expected fraction of cluster unit-capacity demanded per tick."""
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    probs = config.mix_probs()
    demand_per_arrival = 0.0
    for prob, cls in zip(probs, config.classes):
        unit_rate = _class_unit_rate(cls, platforms)
        demand_per_arrival += prob * cls.mean_work() / unit_rate
    capacity = sum(p.capacity for p in platforms)
    return arrival_rate * demand_per_arrival / capacity


def arrival_rate_for_load(
    load: float, config: WorkloadConfig, platforms: Sequence[Platform]
) -> float:
    """Invert :func:`offered_load`: the Poisson rate achieving ``load``."""
    if load <= 0:
        raise ValueError("load must be positive")
    unit = offered_load(1.0, config, platforms)
    return load / unit


def generate_trace(
    config: WorkloadConfig,
    platforms: Sequence[Platform],
    rng: np.random.Generator,
    arrivals: Optional[ArrivalProcess] = None,
    load: Optional[float] = None,
) -> List[Job]:
    """Sample a job trace.

    Exactly one of ``arrivals`` (explicit process) or ``load`` (target
    offered load, mapped to a Poisson rate) must be given.
    """
    if (arrivals is None) == (load is None):
        raise ValueError("provide exactly one of `arrivals` or `load`")
    if arrivals is None:
        arrivals = PoissonArrivals(arrival_rate_for_load(load, config, platforms))
    times = arrivals.sample(config.horizon, rng)
    probs = config.mix_probs()
    base_speeds = {p.name: p.base_speed for p in platforms}
    class_idx = rng.choice(len(config.classes), size=len(times), p=probs)
    jobs: List[Job] = []
    for t, ci in zip(times, class_idx):
        cls = config.classes[int(ci)]
        jobs.append(
            cls.sample_job(
                int(t), rng, base_speeds, tightness_scale=config.tightness_scale
            )
        )
    return jobs
