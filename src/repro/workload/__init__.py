"""Workload substrate: arrival processes, job classes, synthetic traces.

The paper's evaluation workloads (production time-critical traces) are not
available offline; this package provides the documented substitution — a
controllable synthetic generator with Poisson and bursty (Markov-modulated)
arrivals, heavy-tailed service demands, per-class platform affinities, and
a deadline-tightness dial. See DESIGN.md §1 "Substitutions".
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.workload.classes import JobClass, default_job_classes
from repro.workload.generator import (
    WorkloadConfig,
    arrival_rate_for_load,
    generate_trace,
    offered_load,
)
from repro.workload.traces import (
    jobs_from_payload,
    load_trace,
    save_trace,
    trace_payload,
)
from repro.workload import ingest

__all__ = [
    "ArrivalProcess", "PoissonArrivals", "BurstyArrivals",
    "DiurnalArrivals", "DeterministicArrivals",
    "JobClass", "default_job_classes",
    "WorkloadConfig", "generate_trace", "offered_load", "arrival_rate_for_load",
    "save_trace", "load_trace", "trace_payload", "jobs_from_payload",
    "ingest",
]
